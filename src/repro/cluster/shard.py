"""One shard of the cluster: the single-box serve stack behind an RPC.

A :class:`ShardServer` serves one shard's **primary** (subject-routed)
and **replica** (object-routed) containers.  Since PR 9 a shard may be
served by R processes over the same files — ``replica_index`` selects
the process's role:

**Leader** (``replica_index == 0``)
    two writable :class:`~repro.service.engine.QueryService` instances,
    each with its own shard-local WAL, plan/result caches, compaction
    trigger and latency statistics.  Every write is applied WAL-first
    and the shard's epoch documents are published *before* the
    acknowledgement, mirroring the pool writer's
    no-lost-acknowledged-writes contract.  The leader publishes one
    epoch document per side (``<container>.epoch``) — that is the WAL
    shipping channel to the followers.

**Follower** (``replica_index > 0``)
    read-only services over :class:`~repro.dynamic.follower.EpochFollower`
    views of the same containers, refreshed at the start of every read:
    the follower stats the leader's epoch document and tail-replays the
    acknowledged WAL records through :class:`~repro.storage.wal.WalReader`
    — exactly the pre-fork pool's worker replication path.  Because the
    leader publishes before acknowledging, an acknowledged write is
    always readable from any follower that refreshed after the ack.
    Writes and compactions answer :class:`~repro.errors.NotLeaderError`.
    The ``promote`` op turns a follower into the leader: it reopens the
    writable stack over the shared container + WAL (replaying every
    acknowledged record) and resumes the published epoch history, so a
    coordinator that confirmed the old leader dead can fail writes over
    without losing an acknowledged triple.

The :mod:`repro.cluster.rpc` surface the coordinator talks to:

``ping`` / ``health`` / ``stats``
    liveness (now with ``role``), ``combined_epoch`` + WAL state,
    aggregated service reports.
``select`` (streaming)
    one triple pattern against the primary or replica side — the
    coordinator's distributed-join probe path.  Rows stream lazily off
    the snapshot, so an abandoned coordinator stream stops the scan.
``query`` (streaming)
    a whole dictionary-encoded BGP executed locally (the coordinator's
    star-pushdown path) through ``QueryService.execute`` — plan cache,
    result cache and engine selection included.
``update`` / ``compact`` / ``promote``
    routed writes (leader only): the coordinator sends each shard
    exactly the triples it owns, split into a primary and a replica
    portion; both are applied WAL-first under one lock.  Updates are
    idempotent (set semantics), so a coordinator retry after an
    ambiguous failure is safe.

Epoch publication follows :mod:`repro.dynamic.follower`: one atomically
replaced JSON document per container, ``generation`` bumped when a
persisted compaction re-points the container.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterator, Optional

from repro.cluster import rpc
from repro.dynamic.follower import (
    EpochFollower,
    combined_epoch,
    read_epoch_document,
    write_epoch_document,
)
from repro.errors import ClusterError, NotLeaderError
from repro.service.engine import QueryService
from repro import wire


class ShardServer:
    """Serve one shard's primary + replica containers over the cluster RPC.

    ``replica_path=None`` runs a primary-only shard (K=1 clusters and
    tests); object-routed lookups then fall back to the primary side.
    ``replica_index`` picks the process role: 0 is the shard leader
    (writable), anything higher a read-only follower over the same
    files.  ``service_options`` forward to the underlying
    ``QueryService``s.
    """

    def __init__(self, shard_id: int, primary_path, replica_path=None,
                 host: str = "127.0.0.1", port: int = 0,
                 compaction_ratio: Optional[float] = None,
                 mmap: bool = True, quiet: bool = True,
                 replica_index: int = 0,
                 service_options: Optional[dict] = None):
        self.shard_id = int(shard_id)
        self.primary_path = str(primary_path)
        self.replica_path = str(replica_path) if replica_path else None
        self.replica_index = int(replica_index)
        self.quiet = quiet
        self._options = dict(service_options or {})
        self._compaction_ratio = compaction_ratio
        self._mmap = mmap
        self.wal_path = self.primary_path + ".wal"
        self.epoch_path = self.primary_path + ".epoch"
        self.replica_wal_path = (self.replica_path + ".wal"
                                 if self.replica_path else None)
        self.replica_epoch_path = (self.replica_path + ".epoch"
                                   if self.replica_path else None)
        self.primary: QueryService
        self.replica: Optional[QueryService] = None
        self._primary_follower: Optional[EpochFollower] = None
        self._replica_follower: Optional[EpochFollower] = None
        # One lock serialises apply + publish + ack across both sides
        # (and, on a follower, a promotion against everything else).
        self._write_lock = threading.Lock()
        self._generation = 0
        self._replica_generation = 0
        if self.is_leader:
            self._open_leader()
        else:
            self._open_follower()
        self._server = rpc.RpcServer((host, port), {
            "ping": self._op_ping,
            "health": self._op_health,
            "stats": self._op_stats,
            "select": self._op_select,
            "query": self._op_query,
            "update": self._op_update,
            "compact": self._op_compact,
            "promote": self._op_promote,
        })
        self.host = host
        self.port = self._server.port
        self._thread: Optional[threading.Thread] = None
        if self.is_leader:
            self._publish()

    @property
    def is_leader(self) -> bool:
        return self.replica_index == 0

    @property
    def role(self) -> str:
        return "leader" if self.is_leader else "follower"

    # ------------------------------------------------------------------ #
    # Role stacks.
    # ------------------------------------------------------------------ #

    def _open_leader(self) -> None:
        """Open the writable stack: WAL-replaying services on both sides,
        resuming the published generation history so combined epochs stay
        monotonic across restarts and promotions."""
        self.primary = QueryService.from_file(
            self.primary_path, writable=True, wal_path=self.wal_path,
            compaction_ratio=self._compaction_ratio, mmap=self._mmap,
            **self._options)
        if self.replica_path is not None:
            self.replica = QueryService.from_file(
                self.replica_path, writable=True,
                wal_path=self.replica_wal_path,
                compaction_ratio=self._compaction_ratio, mmap=self._mmap,
                **self._options)
        self._primary_follower = None
        self._replica_follower = None
        self._generation = self._resume_generation(
            self.epoch_path, lambda: int(
                self._delta(self.primary).get("epoch", 0)))
        if self.replica_path is not None:
            self._replica_generation = self._resume_generation(
                self.replica_epoch_path, lambda: int(
                    self._delta(self.replica).get("epoch", 0)))

    def _resume_generation(self, epoch_path, current_epoch) -> int:
        previous = read_epoch_document(epoch_path)
        if previous is None:
            return 0
        # Resume the published history: the WAL replay reproduced the
        # acknowledged state, so epochs continue monotonically.
        generation = int(previous.get("generation", 0))
        published = combined_epoch(generation, int(previous.get("epoch", 0)))
        if combined_epoch(generation, current_epoch()) < published:
            # A clean shutdown folded the WAL into the base container,
            # resetting the delta epoch to zero; a new generation keeps
            # the shard's combined epoch above everything it ever
            # acknowledged, so follower caches stay invalidated.
            generation += 1
        return generation

    def _open_follower(self) -> None:
        """Open read-only services over epoch-following views of the
        leader's containers (the WAL-shipping consumer side)."""
        self._primary_follower = EpochFollower(
            self.primary_path, self.epoch_path, mmap=self._mmap)
        self.primary = QueryService(
            self._primary_follower,
            dictionary=self._primary_follower.dictionary,
            cardinalities=self._primary_follower.planner_stats,
            meta=self._primary_follower.meta,
            writable=False, **self._options)
        if self.replica_path is not None:
            self._replica_follower = EpochFollower(
                self.replica_path, self.replica_epoch_path, mmap=self._mmap)
            self.replica = QueryService(
                self._replica_follower,
                dictionary=self._replica_follower.dictionary,
                cardinalities=self._replica_follower.planner_stats,
                meta=self._replica_follower.meta,
                writable=False, **self._options)

    def _refresh(self) -> None:
        """Catch a follower up with the leader's published epoch documents
        (one ``stat`` each when nothing changed); no-op on the leader."""
        if self._primary_follower is not None:
            self._primary_follower.refresh()
        if self._replica_follower is not None:
            self._replica_follower.refresh()

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    def serve_forever(self) -> None:
        if not self.quiet:
            print(f"shard {self.shard_id} ({self.role}) serving on "
                  f"{self.host}:{self.port} (pid {os.getpid()})", flush=True)
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "ShardServer":
        """Serve on a background thread (tests and embedded clusters)."""
        self._thread = rpc.serve_in_thread(self._server)
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for service in (self.primary, self.replica):
            closer = getattr(service, "close", None)
            if closer is not None:
                closer()

    # ------------------------------------------------------------------ #
    # Epochs.
    # ------------------------------------------------------------------ #

    def _delta(self, service: Optional[QueryService]) -> Dict[str, Any]:
        if service is None:
            return {}
        stats = getattr(service.index, "delta_statistics", None)
        return dict(stats()) if stats is not None else {}

    def combined_epoch(self) -> int:
        if self._primary_follower is not None:
            return int(self._primary_follower.combined_epoch)
        return combined_epoch(
            self._generation, int(self._delta(self.primary).get("epoch", 0)))

    def _publish(self) -> None:
        primary = self._delta(self.primary)
        replica = self._delta(self.replica)
        write_epoch_document(self.epoch_path, {
            "generation": self._generation,
            "epoch": int(primary.get("epoch", 0)),
            "wal": self.wal_path,
            "wal_records": int(primary.get("wal_records", 0)),
            "replica_wal_records": int(replica.get("wal_records", 0)),
            "shard": self.shard_id,
            "pid": os.getpid(),
        })
        if self.replica_epoch_path is not None:
            write_epoch_document(self.replica_epoch_path, {
                "generation": self._replica_generation,
                "epoch": int(replica.get("epoch", 0)),
                "wal": self.replica_wal_path,
                "wal_records": int(replica.get("wal_records", 0)),
                "shard": self.shard_id,
                "pid": os.getpid(),
            })

    def _note_compaction(self) -> None:
        if getattr(self.primary, "_persist_error", None) is None:
            self._generation += 1

    def _note_replica_compaction(self) -> None:
        if getattr(self.replica, "_persist_error", None) is None:
            self._replica_generation += 1

    # ------------------------------------------------------------------ #
    # Read ops.
    # ------------------------------------------------------------------ #

    def _op_ping(self, message: dict) -> dict:
        return {"pid": os.getpid(), "shard": self.shard_id,
                "role": self.role, "replica_index": self.replica_index}

    def _op_health(self, message: dict) -> dict:
        self._refresh()
        report = {
            "shard": self.shard_id,
            "status": "ok",
            "role": self.role,
            "replica_index": self.replica_index,
            "combined_epoch": self.combined_epoch(),
            "num_triples": int(self.primary.index.num_triples),
            "has_replica": self.replica is not None,
        }
        if self._primary_follower is not None:
            report["generation"] = self._primary_follower.generation
            report["epoch"] = self._primary_follower.epoch
            # Published records this follower has not applied yet; the
            # publish-before-ack contract plus refresh-per-read keeps it
            # at zero on every served request.
            report["wal_lag"] = int(self._primary_follower.wal_lag())
            report["wal_records"] = 0
        else:
            primary = self._delta(self.primary)
            report["generation"] = self._generation
            report["epoch"] = int(primary.get("epoch", 0))
            # The leader applies its own writes synchronously, so its
            # view never trails the WAL: lag is by construction zero.
            report["wal_lag"] = 0
            report["wal_records"] = int(primary.get("wal_records", 0))
        return report

    def _op_stats(self, message: dict) -> dict:
        self._refresh()
        payload: Dict[str, Any] = {
            "shard": self.shard_id,
            "role": self.role,
            "primary": self.primary.statistics(),
        }
        if self.replica is not None:
            payload["replica"] = self.replica.statistics()
        return payload

    def _side(self, name: str) -> QueryService:
        if name == "replica":
            if self.replica is None:
                raise ClusterError(
                    f"shard {self.shard_id} has no replica container")
            return self.replica
        if name != "primary":
            raise ClusterError(f"unknown shard side {name!r}")
        return self.primary

    def _op_select(self, message: dict) -> Iterator[dict]:
        raw = message.get("pattern")
        if not isinstance(raw, (list, tuple)) or len(raw) != 3:
            raise ClusterError(f"malformed select pattern {raw!r}")
        pattern = tuple(None if term is None else int(term) for term in raw)
        self._refresh()
        service = self._side(str(message.get("side", "primary")))
        index = service.index
        factory = getattr(index, "snapshot", None)
        snapshot = factory() if factory is not None else index

        def frames() -> Iterator[dict]:
            count = 0
            for batch in rpc.chunk_rows(snapshot.select(pattern)):
                count += len(batch)
                yield {"rows": wire.encode_triples(batch)}
            yield {"eos": True, "count": count,
                   "epoch": self.combined_epoch()}
        return frames()

    def _op_query(self, message: dict) -> Iterator[dict]:
        query = wire.decode_query(message.get("query", {}))
        limit = message.get("limit")
        offset = int(message.get("offset", 0))
        timeout = message.get("timeout")
        engine = message.get("engine")
        use_cache = bool(message.get("use_cache", True))
        # Trace context rides the request frame (see repro.wire); the
        # shard's spans then share the coordinator's trace id, with the
        # coordinator's per-shard span as their parent.
        profile = bool(message.get("profile", False))
        trace = message.get("trace")
        if not isinstance(trace, dict):
            trace = None
        self._refresh()
        result = self.primary.execute(
            query, limit=None if limit is None else int(limit),
            offset=offset, timeout=timeout, engine=engine,
            use_cache=use_cache, profile=profile, trace=trace)

        def frames() -> Iterator[dict]:
            for batch in rpc.chunk_rows(result.bindings):
                yield {"rows": [
                    {wire.variable_name(v): int(value)
                     for v, value in row.items()} for row in batch]}
            trailer = {"eos": True, "count": len(result.bindings),
                       "has_more": result.has_more,
                       "cached": result.cached,
                       "statistics": dict(result.statistics),
                       "epoch": self.combined_epoch()}
            if result.profile is not None:
                trailer["profile"] = result.profile
            yield trailer
        return frames()

    # ------------------------------------------------------------------ #
    # Write ops.
    # ------------------------------------------------------------------ #

    def _require_leader(self, op: str) -> None:
        if not self.is_leader:
            raise NotLeaderError(
                f"shard {self.shard_id} replica {self.replica_index} is a "
                f"read-only follower; send {op!r} to the leader (or promote "
                f"this replica once the leader is confirmed dead)")

    @staticmethod
    def _portion(message: dict, side: str) -> Dict[str, list]:
        portion = message.get(side) or {}
        return {
            "insert": [tuple(t) for t in portion.get("insert", [])],
            "delete": [tuple(t) for t in portion.get("delete", [])],
        }

    def _op_update(self, message: dict) -> dict:
        self._require_leader("update")
        primary = self._portion(message, "primary")
        replica = self._portion(message, "replica")
        with self._write_lock:
            reply: Dict[str, Any] = {"shard": self.shard_id}
            if primary["insert"] or primary["delete"]:
                result = self.primary.update(inserts=primary["insert"],
                                             deletes=primary["delete"])
                reply["primary"] = result.to_json()
                if (result.compaction is not None
                        and result.compaction.compacted):
                    self._note_compaction()
            if self.replica is not None and (replica["insert"]
                                             or replica["delete"]):
                replica_result = self.replica.update(
                    inserts=replica["insert"], deletes=replica["delete"])
                reply["replica"] = replica_result.to_json()
                if (replica_result.compaction is not None
                        and replica_result.compaction.compacted):
                    self._note_replica_compaction()
            # Publish before acknowledging: once the coordinator sees the
            # reply the write is WAL-durable and epoch-visible — on every
            # follower of this shard, not just here.
            self._publish()
            reply["combined_epoch"] = self.combined_epoch()
        return reply

    def _op_compact(self, message: dict) -> dict:
        self._require_leader("compact")
        with self._write_lock:
            result = self.primary.compact()
            reply: Dict[str, Any] = {"shard": self.shard_id,
                                     "primary": result.to_json()}
            if self.replica is not None:
                replica_result = self.replica.compact()
                reply["replica"] = replica_result.to_json()
                if replica_result.compacted:
                    self._note_replica_compaction()
            if result.compacted:
                self._note_compaction()
            self._publish()
            reply["combined_epoch"] = self.combined_epoch()
        return reply

    def _op_promote(self, message: dict) -> dict:
        """Become this shard's leader (idempotent).

        Safe when the old leader is dead: the writable stack reopens over
        the shared container + WAL, replaying every acknowledged record,
        and resumes the published generation history.  The caller (the
        coordinator's write failover) only promotes after the configured
        leader failed its whole retry budget.  The old follower views are
        simply dropped — in-flight readers keep their pinned snapshots.
        """
        with self._write_lock:
            if not self.is_leader:
                self._open_leader()
                self.replica_index = 0
                self._publish()
                promoted = True
            else:
                promoted = False
            return {"shard": self.shard_id, "role": self.role,
                    "promoted": promoted,
                    "combined_epoch": self.combined_epoch()}
