"""One shard of the cluster: the single-box serve stack behind an RPC.

A :class:`ShardServer` wraps two ordinary
:class:`~repro.service.engine.QueryService` instances — the
subject-partitioned **primary** and the object-partitioned **replica**
container — each writable with its own shard-local WAL, plan/result
caches, compaction trigger and latency statistics.  Everything the
single-box server learned (epoch-keyed caching, WAL-first durability,
snapshot-pinned reads) is reused unchanged; the only new code is the
:mod:`repro.cluster.rpc` surface the coordinator talks to:

``ping`` / ``health`` / ``stats``
    liveness, ``combined_epoch`` + WAL state, aggregated service reports.
``select`` (streaming)
    one triple pattern against the primary or replica side — the
    coordinator's distributed-join probe path.  Rows stream lazily off
    the snapshot, so an abandoned coordinator stream stops the scan.
``query`` (streaming)
    a whole dictionary-encoded BGP executed locally (the coordinator's
    star-pushdown path) through ``QueryService.execute`` — plan cache,
    result cache and engine selection included.
``update`` / ``compact``
    routed writes: the coordinator sends each shard exactly the triples
    it owns, split into a primary and a replica portion; both are applied
    WAL-first under one lock and the shard's epoch document is published
    *before* the acknowledgement, mirroring the pool writer's
    no-lost-acknowledged-writes contract.  Updates are idempotent (set
    semantics), so a coordinator retry after an ambiguous failure is
    safe.

Epoch publication follows :mod:`repro.dynamic.follower`: one atomically
replaced JSON document per shard, ``generation`` bumped when a persisted
compaction re-points the container.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterator, Optional

from repro.cluster import rpc
from repro.dynamic.follower import (
    combined_epoch,
    read_epoch_document,
    write_epoch_document,
)
from repro.errors import ClusterError
from repro.service.engine import QueryService
from repro import wire


class ShardServer:
    """Serve one shard's primary + replica containers over the cluster RPC.

    ``replica_path=None`` runs a primary-only shard (K=1 clusters and
    tests); object-routed lookups then fall back to the primary side.
    ``service_options`` forward to both underlying ``QueryService``s.
    """

    def __init__(self, shard_id: int, primary_path, replica_path=None,
                 host: str = "127.0.0.1", port: int = 0,
                 compaction_ratio: Optional[float] = None,
                 mmap: bool = True, quiet: bool = True,
                 service_options: Optional[dict] = None):
        self.shard_id = int(shard_id)
        self.primary_path = str(primary_path)
        self.replica_path = str(replica_path) if replica_path else None
        self.quiet = quiet
        options = dict(service_options or {})
        self.wal_path = self.primary_path + ".wal"
        self.epoch_path = self.primary_path + ".epoch"
        self.primary = QueryService.from_file(
            self.primary_path, writable=True, wal_path=self.wal_path,
            compaction_ratio=compaction_ratio, mmap=mmap, **options)
        self.replica: Optional[QueryService] = None
        if self.replica_path is not None:
            self.replica = QueryService.from_file(
                self.replica_path, writable=True,
                wal_path=self.replica_path + ".wal",
                compaction_ratio=compaction_ratio, mmap=mmap, **options)
        # One lock serialises apply + publish + ack across both sides.
        self._write_lock = threading.Lock()
        self._generation = 0
        previous = read_epoch_document(self.epoch_path)
        if previous is not None:
            # Resume the published history: the WAL replay reproduced the
            # acknowledged state, so epochs continue monotonically.
            self._generation = int(previous.get("generation", 0))
            published = combined_epoch(self._generation,
                                       int(previous.get("epoch", 0)))
            if self.combined_epoch() < published:
                # A clean shutdown folded the WAL into the base container,
                # resetting the delta epoch to zero; a new generation keeps
                # the shard's combined epoch above everything it ever
                # acknowledged, so follower caches stay invalidated.
                self._generation += 1
        self._server = rpc.RpcServer((host, port), {
            "ping": self._op_ping,
            "health": self._op_health,
            "stats": self._op_stats,
            "select": self._op_select,
            "query": self._op_query,
            "update": self._op_update,
            "compact": self._op_compact,
        })
        self.host = host
        self.port = self._server.port
        self._thread: Optional[threading.Thread] = None
        self._publish()

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    def serve_forever(self) -> None:
        if not self.quiet:
            print(f"shard {self.shard_id} serving on "
                  f"{self.host}:{self.port} (pid {os.getpid()})", flush=True)
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "ShardServer":
        """Serve on a background thread (tests and embedded clusters)."""
        self._thread = rpc.serve_in_thread(self._server)
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for service in (self.primary, self.replica):
            closer = getattr(service, "close", None)
            if closer is not None:
                closer()

    # ------------------------------------------------------------------ #
    # Epochs.
    # ------------------------------------------------------------------ #

    def _delta(self, service: Optional[QueryService]) -> Dict[str, Any]:
        if service is None:
            return {}
        stats = getattr(service.index, "delta_statistics", None)
        return dict(stats()) if stats is not None else {}

    def combined_epoch(self) -> int:
        return combined_epoch(
            self._generation, int(self._delta(self.primary).get("epoch", 0)))

    def _publish(self) -> None:
        primary = self._delta(self.primary)
        replica = self._delta(self.replica)
        write_epoch_document(self.epoch_path, {
            "generation": self._generation,
            "epoch": int(primary.get("epoch", 0)),
            "wal": self.wal_path,
            "wal_records": int(primary.get("wal_records", 0)),
            "replica_wal_records": int(replica.get("wal_records", 0)),
            "shard": self.shard_id,
            "pid": os.getpid(),
        })

    def _note_compaction(self) -> None:
        if getattr(self.primary, "_persist_error", None) is None:
            self._generation += 1

    # ------------------------------------------------------------------ #
    # Read ops.
    # ------------------------------------------------------------------ #

    def _op_ping(self, message: dict) -> dict:
        return {"pid": os.getpid(), "shard": self.shard_id}

    def _op_health(self, message: dict) -> dict:
        primary = self._delta(self.primary)
        return {
            "shard": self.shard_id,
            "status": "ok",
            "combined_epoch": self.combined_epoch(),
            "generation": self._generation,
            "epoch": int(primary.get("epoch", 0)),
            # The shard applies its own writes synchronously, so its view
            # never trails the WAL: lag is by construction zero.  The
            # field exists so coordinator /healthz can sum follower lags
            # uniformly across pool workers and shards.
            "wal_lag": 0,
            "wal_records": int(primary.get("wal_records", 0)),
            "num_triples": int(self.primary.index.num_triples),
            "has_replica": self.replica is not None,
        }

    def _op_stats(self, message: dict) -> dict:
        payload: Dict[str, Any] = {
            "shard": self.shard_id,
            "primary": self.primary.statistics(),
        }
        if self.replica is not None:
            payload["replica"] = self.replica.statistics()
        return payload

    def _side(self, name: str) -> QueryService:
        if name == "replica":
            if self.replica is None:
                raise ClusterError(
                    f"shard {self.shard_id} has no replica container")
            return self.replica
        if name != "primary":
            raise ClusterError(f"unknown shard side {name!r}")
        return self.primary

    def _op_select(self, message: dict) -> Iterator[dict]:
        raw = message.get("pattern")
        if not isinstance(raw, (list, tuple)) or len(raw) != 3:
            raise ClusterError(f"malformed select pattern {raw!r}")
        pattern = tuple(None if term is None else int(term) for term in raw)
        service = self._side(str(message.get("side", "primary")))
        index = service.index
        factory = getattr(index, "snapshot", None)
        snapshot = factory() if factory is not None else index

        def frames() -> Iterator[dict]:
            count = 0
            for batch in rpc.chunk_rows(snapshot.select(pattern)):
                count += len(batch)
                yield {"rows": wire.encode_triples(batch)}
            yield {"eos": True, "count": count,
                   "epoch": self.combined_epoch()}
        return frames()

    def _op_query(self, message: dict) -> Iterator[dict]:
        query = wire.decode_query(message.get("query", {}))
        limit = message.get("limit")
        offset = int(message.get("offset", 0))
        timeout = message.get("timeout")
        engine = message.get("engine")
        use_cache = bool(message.get("use_cache", True))
        result = self.primary.execute(
            query, limit=None if limit is None else int(limit),
            offset=offset, timeout=timeout, engine=engine,
            use_cache=use_cache)

        def frames() -> Iterator[dict]:
            for batch in rpc.chunk_rows(result.bindings):
                yield {"rows": [
                    {wire.variable_name(v): int(value)
                     for v, value in row.items()} for row in batch]}
            yield {"eos": True, "count": len(result.bindings),
                   "has_more": result.has_more,
                   "cached": result.cached,
                   "statistics": dict(result.statistics),
                   "epoch": self.combined_epoch()}
        return frames()

    # ------------------------------------------------------------------ #
    # Write ops.
    # ------------------------------------------------------------------ #

    @staticmethod
    def _portion(message: dict, side: str) -> Dict[str, list]:
        portion = message.get(side) or {}
        return {
            "insert": [tuple(t) for t in portion.get("insert", [])],
            "delete": [tuple(t) for t in portion.get("delete", [])],
        }

    def _op_update(self, message: dict) -> dict:
        primary = self._portion(message, "primary")
        replica = self._portion(message, "replica")
        with self._write_lock:
            reply: Dict[str, Any] = {"shard": self.shard_id}
            if primary["insert"] or primary["delete"]:
                result = self.primary.update(inserts=primary["insert"],
                                             deletes=primary["delete"])
                reply["primary"] = result.to_json()
                if (result.compaction is not None
                        and result.compaction.compacted):
                    self._note_compaction()
            if self.replica is not None and (replica["insert"]
                                             or replica["delete"]):
                replica_result = self.replica.update(
                    inserts=replica["insert"], deletes=replica["delete"])
                reply["replica"] = replica_result.to_json()
            # Publish before acknowledging: once the coordinator sees the
            # reply the write is WAL-durable and epoch-visible.
            self._publish()
            reply["combined_epoch"] = self.combined_epoch()
        return reply

    def _op_compact(self, message: dict) -> dict:
        with self._write_lock:
            result = self.primary.compact()
            reply: Dict[str, Any] = {"shard": self.shard_id,
                                     "primary": result.to_json()}
            if self.replica is not None:
                reply["replica"] = self.replica.compact().to_json()
            if result.compacted:
                self._note_compaction()
            self._publish()
            reply["combined_epoch"] = self.combined_epoch()
        return reply
