"""The coordinator's view of the shards: routing, scatter, fan-in.

:class:`ClusterClient` owns one :class:`ShardReplicaSet` per shard — a
health-tracked group of :class:`~repro.cluster.rpc.RpcClient` endpoints
over that shard's R serving processes — and implements the routing
rules the partitioner's layout promises (see
:mod:`repro.cluster.partition`):

* subject bound → the one **primary** shard ``shard_of(s, K)``;
* subject free, object bound (and replicas exist) → the one **replica**
  shard ``shard_of(o, K)``;
* otherwise → broadcast over every primary shard (primaries partition
  the triple set, so chaining the disjoint streams is an exact union).

**Failover** lives in the replica set.  Reads prefer the endpoint that
answered last (sticky, so a healthy replica keeps its warm caches) and
on connection failure rotate to the next replica before the shard is
declared down — a shard is only unavailable when *every* replica is.
Writes go to the shard's leader; when the leader fails its whole retry
budget the set promotes the next live replica (the ``promote`` RPC) and
retries the write there.  Both paths fail over only on transport-level
:class:`~repro.errors.ShardUnavailableError` — a remote application
error is the answer, not a reason to ask someone else.

:class:`ClusterIndex` wraps the routing behind the ordinary
:class:`~repro.core.base.TripleIndex` interface — only ``select()`` is
implemented, which is the one method both query engines need (the wcoj
executor materialises per-pattern when no native cursors exist).  That
is what lets the unmodified single-box :class:`QueryService` — plan
cache, result cache, limit/offset/timeout — run distributed joins.

**Partial-failure policy** rides a per-request thread-local context:
under ``best_effort`` a dead shard's contribution is skipped and the
failure recorded (the coordinator marks the response ``incomplete`` and
refuses to cache it); fail-fast (the default) re-raises
:class:`~repro.errors.ShardUnavailableError`, which HTTP maps to 503.
Writes are *always* fail-fast: an acknowledgement must mean every owning
shard holds the triples in its WAL.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster import rpc
from repro.cluster.partition import shard_of
from repro.core.base import TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import ClusterError, NotLeaderError, ShardUnavailableError
from repro import wire

_context = threading.local()


def begin_request(best_effort: bool, collect_events: bool = False) -> None:
    """Open a per-thread request scope for the partial-failure policy.

    ``collect_events=True`` (a profiled query) additionally records every
    failed replica attempt and best-effort drop, so the coordinator can
    attach them to the per-shard trace spans.
    """
    _context.best_effort = bool(best_effort)
    _context.failed = {}
    _context.events = [] if collect_events else None


def end_request() -> Dict[int, str]:
    """Close the scope; returns ``{shard_id: error message}`` skipped."""
    failed = getattr(_context, "failed", {})
    _context.best_effort = False
    _context.failed = {}
    _context.events = None
    return failed


def record_attempt(shard_id: int, address: str,
                   error: Optional[Exception] = None) -> None:
    """Note one replica attempt in the open scope (profiled queries only)."""
    events = getattr(_context, "events", None)
    if events is None:
        return
    event: Dict[str, Any] = {"shard": int(shard_id), "address": str(address)}
    if error is not None:
        event["error"] = str(error)
    events.append(event)


def request_events() -> List[Dict[str, Any]]:
    """The failover/drop events recorded so far in the open scope."""
    return list(getattr(_context, "events", None) or [])


def absorb_failure(shard_id: int, error: Exception) -> bool:
    """Record a shard failure if best-effort allows skipping it."""
    if not getattr(_context, "best_effort", False):
        return False
    failures = getattr(_context, "failed", None)
    if failures is None:
        _context.failed = failures = {}
    failures.setdefault(int(shard_id), str(error))
    events = getattr(_context, "events", None)
    if events is not None:
        events.append({"shard": int(shard_id), "dropped": True,
                       "error": str(error)})
    return True


def request_failures() -> Dict[int, str]:
    """Failures recorded so far in the calling thread's open scope.

    Lets the coordinator's result cache refuse to store a page that was
    computed while any shard was being skipped, without closing the
    scope (``end_request``) prematurely.
    """
    return dict(getattr(_context, "failed", None) or {})


def _normalize_endpoints(addresses) -> List[List[Tuple[str, int]]]:
    """One list of ``(host, port)`` per shard, from either shape.

    Accepts the PR 7 form (one ``(host, port)`` per shard) or the
    replicated form (one sequence of endpoints per shard, leader first).
    """
    groups: List[List[Tuple[str, int]]] = []
    for entry in addresses:
        entry = list(entry)
        if len(entry) == 2 and isinstance(entry[0], str):
            groups.append([(entry[0], int(entry[1]))])
        else:
            group = [(str(host), int(port)) for host, port in entry]
            if not group:
                raise ClusterError("a shard needs at least one endpoint")
            groups.append(group)
    return groups


class ShardReplicaSet:
    """One shard's endpoints with sticky read preference and failover.

    ``endpoints`` are ordered leader first (replica 0).  Reads start at
    the last endpoint that answered and rotate on transport failure;
    writes start at the believed leader and, once it has failed its
    whole retry budget, promote the next live replica before retrying.
    Thread-safe: the preference indices are advisory hints guarded by a
    lock; the underlying :class:`~repro.cluster.rpc.RpcClient`s do their
    own locking.
    """

    def __init__(self, shard_id: int, endpoints: Sequence[Tuple[str, int]],
                 retries: int = 2, backoff: float = 0.05):
        self.shard_id = int(shard_id)
        self.clients = [rpc.RpcClient(host, port, retries=retries,
                                      backoff=backoff)
                        for host, port in endpoints]
        self._lock = threading.Lock()
        self._preferred = 0
        self._leader = 0

    @property
    def num_replicas(self) -> int:
        return len(self.clients)

    def addresses(self) -> List[str]:
        return [client.address for client in self.clients]

    def close(self) -> None:
        for client in self.clients:
            client.close()

    def _rotation(self, start: int) -> List[int]:
        count = len(self.clients)
        return [(start + step) % count for step in range(count)]

    def _mark_read(self, index: int) -> None:
        with self._lock:
            self._preferred = index

    def _mark_leader(self, index: int) -> None:
        with self._lock:
            self._leader = index
            self._preferred = index

    def _unreachable(self, last_error: Optional[Exception]
                     ) -> ShardUnavailableError:
        return ShardUnavailableError(
            f"shard {self.shard_id}: no replica reachable "
            f"({', '.join(self.addresses())}): {last_error}")

    # -- reads ---------------------------------------------------------- #

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """A read-path unary call with replica failover."""
        with self._lock:
            start = self._preferred
        last_error: Optional[Exception] = None
        for index in self._rotation(start):
            try:
                reply = self.clients[index].call(message)
            except ShardUnavailableError as error:
                last_error = error
                record_attempt(self.shard_id, self.clients[index].address,
                               error)
                continue
            self._mark_read(index)
            return reply
        raise self._unreachable(last_error)

    def stream(self, message: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """A streaming read with replica failover.

        Failover happens only before the first frame —
        :meth:`RpcClient.stream` raises before returning the iterator if
        the peer is unreachable, and a mid-stream death cannot be
        silently re-sent without duplicating rows.
        """
        with self._lock:
            start = self._preferred
        last_error: Optional[Exception] = None
        for index in self._rotation(start):
            try:
                frames = self.clients[index].stream(message)
            except ShardUnavailableError as error:
                last_error = error
                record_attempt(self.shard_id, self.clients[index].address,
                               error)
                continue
            self._mark_read(index)
            return frames
        raise self._unreachable(last_error)

    # -- writes --------------------------------------------------------- #

    def write(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """A leader unary call with promote-on-failure.

        The believed leader goes first.  Only after it fails its whole
        RPC retry budget is the next live replica asked to ``promote``
        (reopening the writable stack over the shared container + WAL)
        and the write retried there — shard ops are idempotent, so the
        retry after an ambiguous first send cannot double-apply.
        """
        with self._lock:
            start = self._leader
        last_error: Optional[Exception] = None
        for position, index in enumerate(self._rotation(start)):
            client = self.clients[index]
            try:
                reply = client.call(message)
            except NotLeaderError as error:
                if position == 0:
                    # Our leader pointer is stale (e.g. a killed leader
                    # restarted as a follower); find the real one below.
                    last_error = error
                    continue
                try:
                    client.call({"op": "promote"})
                    reply = client.call(message)
                except (ShardUnavailableError, ClusterError) as promote_error:
                    last_error = promote_error
                    continue
            except ShardUnavailableError as error:
                last_error = error
                continue
            self._mark_leader(index)
            return reply
        raise ShardUnavailableError(
            f"shard {self.shard_id}: no writable replica "
            f"({', '.join(self.addresses())}): {last_error}")

    # -- observability -------------------------------------------------- #

    def health(self) -> Dict[str, Any]:
        """The shard's health: the first reachable replica's report plus
        per-replica reachability — a shard is only down when every
        replica is."""
        replicas = []
        primary_report: Optional[Dict[str, Any]] = None
        for index, client in enumerate(self.clients):
            try:
                report = client.call({"op": "health"})
                report.pop("ok", None)
                replicas.append({"address": client.address,
                                 "status": "ok",
                                 "role": report.get("role", "leader"),
                                 "combined_epoch":
                                     report.get("combined_epoch"),
                                 "wal_lag": report.get("wal_lag", 0)})
                if primary_report is None:
                    primary_report = report
            except Exception as error:  # noqa: BLE001 - health must degrade
                replicas.append({"address": client.address,
                                 "status": "unreachable",
                                 "error": str(error)})
        if primary_report is None:
            return {"shard": self.shard_id, "status": "unreachable",
                    "error": "no replica reachable",
                    "replicas": replicas, "replicas_reachable": 0}
        primary_report["replicas"] = replicas
        primary_report["replicas_reachable"] = sum(
            1 for entry in replicas if entry["status"] == "ok")
        return primary_report

    def stats(self) -> Dict[str, Any]:
        last_error: Optional[Exception] = None
        for client in self.clients:
            try:
                report = client.call({"op": "stats"})
                report.pop("ok", None)
                return report
            except Exception as error:  # noqa: BLE001 - stats must degrade
                last_error = error
        return {"shard": self.shard_id, "status": "unreachable",
                "error": str(last_error)}


class ClusterClient:
    """RPC fan-out over the manifest's shards.

    ``addresses`` lists, per shard in manifest order, either one
    ``(host, port)`` endpoint (an unreplicated deployment) or a sequence
    of them — that shard's replica set, leader first.
    """

    def __init__(self, manifest: dict,
                 addresses: Sequence,
                 retries: int = 2, backoff: float = 0.05):
        self.manifest = manifest
        self.num_shards = int(manifest["num_shards"])
        groups = _normalize_endpoints(addresses)
        if len(groups) != self.num_shards:
            raise ClusterError(
                f"manifest describes {self.num_shards} shard(s) but "
                f"{len(groups)} address group(s) were given")
        self.shards = [ShardReplicaSet(shard_id, endpoints,
                                       retries=retries, backoff=backoff)
                       for shard_id, endpoints in enumerate(groups)]
        self.has_replicas = all(entry.get("replica")
                                for entry in manifest["shards"])

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    # ------------------------------------------------------------------ #
    # Pattern routing.
    # ------------------------------------------------------------------ #

    def route(self, pattern: Sequence[Optional[int]]
              ) -> Tuple[str, List[int]]:
        """``(side, shard ids)`` answering ``pattern`` exactly once."""
        s, _, o = pattern
        if s is not None:
            return "primary", [shard_of(s, self.num_shards)]
        if o is not None and self.has_replicas:
            return "replica", [shard_of(o, self.num_shards)]
        return "primary", list(range(self.num_shards))

    def select(self, pattern: Sequence[Optional[int]]
               ) -> Iterator[Tuple[int, int, int]]:
        """Lazily yield every matching triple across the cluster."""
        side, targets = self.route(pattern)
        message = {"op": "select",
                   "pattern": [None if t is None else int(t)
                               for t in pattern],
                   "side": side}
        for shard_id in targets:
            try:
                stream = self.shards[shard_id].stream(message)
            except ShardUnavailableError as error:
                if absorb_failure(shard_id, error):
                    continue
                raise
            try:
                for frame in stream:
                    for row in frame.get("rows", ()):
                        yield (int(row[0]), int(row[1]), int(row[2]))
            except ShardUnavailableError as error:
                if absorb_failure(shard_id, error):
                    continue
                raise

    # ------------------------------------------------------------------ #
    # Pushed-down BGP execution.
    # ------------------------------------------------------------------ #

    def query_shard(self, shard_id: int, query, engine: str,
                    limit: Optional[int], timeout: Optional[float],
                    use_cache: bool, profile: bool = False,
                    trace: Optional[Dict[str, str]] = None
                    ) -> Tuple[List[Dict[str, int]], dict]:
        """Run a whole BGP on one shard; returns ``(bindings, trailer)``.

        Bindings come back in engine-native spelling (``?x`` keys);
        the trailer is the stream's ``eos`` frame (statistics, cached,
        and — when ``profile`` was requested — the shard's span tree).
        ``trace`` carries the coordinator's trace context so the shard's
        spans join the same distributed trace.
        """
        message: Dict[str, Any] = {"op": "query",
                                   "query": wire.encode_query(query),
                                   "engine": engine,
                                   "use_cache": use_cache}
        if limit is not None:
            message["limit"] = int(limit)
        if timeout is not None:
            message["timeout"] = float(timeout)
        if profile:
            message["profile"] = True
        if trace:
            message["trace"] = dict(trace)
        rows: List[Dict[str, int]] = []
        trailer: dict = {}
        for frame in self.shards[shard_id].stream(message):
            for row in frame.get("rows", ()):
                rows.append({wire.variable_sigil(name): int(value)
                             for name, value in row.items()})
            if frame.get("eos"):
                trailer = frame
        return rows, trailer

    # ------------------------------------------------------------------ #
    # Routed writes (always fail-fast).
    # ------------------------------------------------------------------ #

    def plan_update(self, inserts: Sequence[Tuple[int, int, int]],
                    deletes: Sequence[Tuple[int, int, int]]
                    ) -> Dict[int, Dict[str, Dict[str, list]]]:
        """Group a write batch by owning shard and side.

        Every triple lands in the primary of ``shard_of(s)`` and (when
        replicas exist) the replica of ``shard_of(o)`` — the same rule
        the partitioner used, so reads keep finding one copy per side.
        """
        plan: Dict[int, Dict[str, Dict[str, list]]] = {}

        def portion(shard_id: int, side: str, op: str, triple) -> None:
            shard_plan = plan.setdefault(shard_id, {})
            side_plan = shard_plan.setdefault(
                side, {"insert": [], "delete": []})
            side_plan[op].append([int(triple[0]), int(triple[1]),
                                  int(triple[2])])

        for op, batch in (("insert", inserts), ("delete", deletes)):
            for triple in batch:
                portion(shard_of(triple[0], self.num_shards), "primary",
                        op, triple)
                if self.has_replicas:
                    portion(shard_of(triple[2], self.num_shards), "replica",
                            op, triple)
        return plan

    def update(self, inserts: Sequence[Tuple[int, int, int]] = (),
               deletes: Sequence[Tuple[int, int, int]] = ()
               ) -> Dict[str, Any]:
        """Forward a write batch to every owning shard; aggregate acks.

        Sends are sequential and each is retried inside the RPC client;
        updates are idempotent on the shard (set semantics), so a retry
        after an ambiguous failure cannot double-apply.  Any shard still
        unreachable fails the whole batch — no partial acknowledgement.
        """
        plan = self.plan_update(inserts, deletes)
        replies = []
        for shard_id in sorted(plan):
            message = {"op": "update"}
            message.update(plan[shard_id])
            replies.append(self.shards[shard_id].write(message))
        aggregated = {
            "inserted": sum(reply.get("primary", {}).get("inserted", 0)
                            for reply in replies),
            "deleted": sum(reply.get("primary", {}).get("deleted", 0)
                           for reply in replies),
            "compacted": any(reply.get("primary", {}).get("compacted")
                             for reply in replies),
            "shards": [{"shard": reply.get("shard"),
                        "combined_epoch": reply.get("combined_epoch")}
                       for reply in replies],
        }
        return aggregated

    def compact(self) -> Dict[str, Any]:
        """Compact every shard (both sides); aggregate the reports."""
        replies = [shard.write({"op": "compact"})
                   for shard in self.shards]
        return {
            "compacted": any(reply.get("primary", {}).get("compacted")
                             for reply in replies),
            "shards": [{"shard": reply.get("shard"),
                        "primary": reply.get("primary"),
                        "replica": reply.get("replica"),
                        "combined_epoch": reply.get("combined_epoch")}
                       for reply in replies],
        }

    # ------------------------------------------------------------------ #
    # Observability fan-in.
    # ------------------------------------------------------------------ #

    def health(self) -> List[Dict[str, Any]]:
        """Per-shard health (with per-replica detail); a shard reports
        unreachable only when *no* replica answers."""
        return [shard.health() for shard in self.shards]

    def stats(self) -> List[Dict[str, Any]]:
        return [shard.stats() for shard in self.shards]


class ClusterIndex(TripleIndex):
    """The cluster behind the single-box :class:`TripleIndex` interface.

    Implements only the mandatory surface; deliberately no
    ``seek_cursor``/``select_values``, so the wcoj executor takes its
    materialising fallback — per-pattern scatter instead of per-seek
    network round trips.
    """

    name = "cluster"

    def __init__(self, cluster: ClusterClient):
        self._cluster = cluster
        self._epoch = 0
        self._size_estimate: Optional[int] = None

    @property
    def cluster(self) -> ClusterClient:
        return self._cluster

    @property
    def epoch(self) -> int:
        """The coordinator's write epoch: bumped on every routed write or
        compaction, carried in every result-cache key, so cached pages
        die with the data that produced them."""
        return self._epoch

    def bump_epoch(self) -> None:
        self._epoch += 1

    def select(self, pattern) -> Iterator[Tuple[int, int, int]]:
        terms = TriplePattern.from_tuple(pattern).as_tuple()
        return self._cluster.select(terms)

    @property
    def num_triples(self) -> int:
        total = 0
        for report in self._cluster.health():
            total += int(report.get("num_triples", 0))
        return total

    def size_in_bits(self) -> int:
        total = 0
        for report in self._cluster.stats():
            total += int(report.get("primary", {})
                         .get("index", {}).get("size_in_bits", 0))
        return total
