"""The coordinator's view of the shards: routing, scatter, fan-in.

:class:`ClusterClient` owns one :class:`~repro.cluster.rpc.RpcClient`
per shard and implements the routing rules the partitioner's layout
promises (see :mod:`repro.cluster.partition`):

* subject bound → the one **primary** shard ``shard_of(s, K)``;
* subject free, object bound (and replicas exist) → the one **replica**
  shard ``shard_of(o, K)``;
* otherwise → broadcast over every primary shard (primaries partition
  the triple set, so chaining the disjoint streams is an exact union).

:class:`ClusterIndex` wraps that routing behind the ordinary
:class:`~repro.core.base.TripleIndex` interface — only ``select()`` is
implemented, which is the one method both query engines need (the wcoj
executor materialises per-pattern when no native cursors exist).  That
is what lets the unmodified single-box :class:`QueryService` — plan
cache, result cache, limit/offset/timeout — run distributed joins.

**Partial-failure policy** rides a per-request thread-local context:
under ``best_effort`` a dead shard's contribution is skipped and the
failure recorded (the coordinator marks the response ``incomplete``);
fail-fast (the default) re-raises
:class:`~repro.errors.ShardUnavailableError`, which HTTP maps to 503.
Writes are *always* fail-fast: an acknowledgement must mean every owning
shard holds the triples in its WAL.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster import rpc
from repro.cluster.partition import shard_of
from repro.core.base import TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import ClusterError, ShardUnavailableError
from repro import wire

_context = threading.local()


def begin_request(best_effort: bool) -> None:
    """Open a per-thread request scope for the partial-failure policy."""
    _context.best_effort = bool(best_effort)
    _context.failed = {}


def end_request() -> Dict[int, str]:
    """Close the scope; returns ``{shard_id: error message}`` skipped."""
    failed = getattr(_context, "failed", {})
    _context.best_effort = False
    _context.failed = {}
    return failed


def absorb_failure(shard_id: int, error: Exception) -> bool:
    """Record a shard failure if best-effort allows skipping it."""
    if not getattr(_context, "best_effort", False):
        return False
    failures = getattr(_context, "failed", None)
    if failures is None:
        _context.failed = failures = {}
    failures.setdefault(int(shard_id), str(error))
    return True


class ClusterClient:
    """RPC fan-out over the manifest's shards.

    ``addresses`` lists one ``(host, port)`` per shard, in manifest
    order — the deployment's mapping from shard id to endpoint.
    """

    def __init__(self, manifest: dict,
                 addresses: Sequence[Tuple[str, int]],
                 retries: int = 2, backoff: float = 0.05):
        self.manifest = manifest
        self.num_shards = int(manifest["num_shards"])
        if len(addresses) != self.num_shards:
            raise ClusterError(
                f"manifest describes {self.num_shards} shard(s) but "
                f"{len(addresses)} address(es) were given")
        self.clients = [rpc.RpcClient(host, port, retries=retries,
                                      backoff=backoff)
                        for host, port in addresses]
        self.has_replicas = all(entry.get("replica")
                                for entry in manifest["shards"])

    def close(self) -> None:
        for client in self.clients:
            client.close()

    # ------------------------------------------------------------------ #
    # Pattern routing.
    # ------------------------------------------------------------------ #

    def route(self, pattern: Sequence[Optional[int]]
              ) -> Tuple[str, List[int]]:
        """``(side, shard ids)`` answering ``pattern`` exactly once."""
        s, _, o = pattern
        if s is not None:
            return "primary", [shard_of(s, self.num_shards)]
        if o is not None and self.has_replicas:
            return "replica", [shard_of(o, self.num_shards)]
        return "primary", list(range(self.num_shards))

    def select(self, pattern: Sequence[Optional[int]]
               ) -> Iterator[Tuple[int, int, int]]:
        """Lazily yield every matching triple across the cluster."""
        side, targets = self.route(pattern)
        message = {"op": "select",
                   "pattern": [None if t is None else int(t)
                               for t in pattern],
                   "side": side}
        for shard_id in targets:
            try:
                stream = self.clients[shard_id].stream(message)
            except ShardUnavailableError as error:
                if absorb_failure(shard_id, error):
                    continue
                raise
            try:
                for frame in stream:
                    for row in frame.get("rows", ()):
                        yield (int(row[0]), int(row[1]), int(row[2]))
            except ShardUnavailableError as error:
                if absorb_failure(shard_id, error):
                    continue
                raise

    # ------------------------------------------------------------------ #
    # Pushed-down BGP execution.
    # ------------------------------------------------------------------ #

    def query_shard(self, shard_id: int, query, engine: str,
                    limit: Optional[int], timeout: Optional[float],
                    use_cache: bool) -> Tuple[List[Dict[str, int]], dict]:
        """Run a whole BGP on one shard; returns ``(bindings, trailer)``.

        Bindings come back in engine-native spelling (``?x`` keys);
        the trailer is the stream's ``eos`` frame (statistics, cached).
        """
        message: Dict[str, Any] = {"op": "query",
                                   "query": wire.encode_query(query),
                                   "engine": engine,
                                   "use_cache": use_cache}
        if limit is not None:
            message["limit"] = int(limit)
        if timeout is not None:
            message["timeout"] = float(timeout)
        rows: List[Dict[str, int]] = []
        trailer: dict = {}
        for frame in self.clients[shard_id].stream(message):
            for row in frame.get("rows", ()):
                rows.append({wire.variable_sigil(name): int(value)
                             for name, value in row.items()})
            if frame.get("eos"):
                trailer = frame
        return rows, trailer

    # ------------------------------------------------------------------ #
    # Routed writes (always fail-fast).
    # ------------------------------------------------------------------ #

    def plan_update(self, inserts: Sequence[Tuple[int, int, int]],
                    deletes: Sequence[Tuple[int, int, int]]
                    ) -> Dict[int, Dict[str, Dict[str, list]]]:
        """Group a write batch by owning shard and side.

        Every triple lands in the primary of ``shard_of(s)`` and (when
        replicas exist) the replica of ``shard_of(o)`` — the same rule
        the partitioner used, so reads keep finding one copy per side.
        """
        plan: Dict[int, Dict[str, Dict[str, list]]] = {}

        def portion(shard_id: int, side: str, op: str, triple) -> None:
            shard_plan = plan.setdefault(shard_id, {})
            side_plan = shard_plan.setdefault(
                side, {"insert": [], "delete": []})
            side_plan[op].append([int(triple[0]), int(triple[1]),
                                  int(triple[2])])

        for op, batch in (("insert", inserts), ("delete", deletes)):
            for triple in batch:
                portion(shard_of(triple[0], self.num_shards), "primary",
                        op, triple)
                if self.has_replicas:
                    portion(shard_of(triple[2], self.num_shards), "replica",
                            op, triple)
        return plan

    def update(self, inserts: Sequence[Tuple[int, int, int]] = (),
               deletes: Sequence[Tuple[int, int, int]] = ()
               ) -> Dict[str, Any]:
        """Forward a write batch to every owning shard; aggregate acks.

        Sends are sequential and each is retried inside the RPC client;
        updates are idempotent on the shard (set semantics), so a retry
        after an ambiguous failure cannot double-apply.  Any shard still
        unreachable fails the whole batch — no partial acknowledgement.
        """
        plan = self.plan_update(inserts, deletes)
        replies = []
        for shard_id in sorted(plan):
            message = {"op": "update"}
            message.update(plan[shard_id])
            replies.append(self.clients[shard_id].call(message))
        aggregated = {
            "inserted": sum(reply.get("primary", {}).get("inserted", 0)
                            for reply in replies),
            "deleted": sum(reply.get("primary", {}).get("deleted", 0)
                           for reply in replies),
            "compacted": any(reply.get("primary", {}).get("compacted")
                             for reply in replies),
            "shards": [{"shard": reply.get("shard"),
                        "combined_epoch": reply.get("combined_epoch")}
                       for reply in replies],
        }
        return aggregated

    def compact(self) -> Dict[str, Any]:
        """Compact every shard (both sides); aggregate the reports."""
        replies = [client.call({"op": "compact"})
                   for client in self.clients]
        return {
            "compacted": any(reply.get("primary", {}).get("compacted")
                             for reply in replies),
            "shards": [{"shard": reply.get("shard"),
                        "primary": reply.get("primary"),
                        "replica": reply.get("replica"),
                        "combined_epoch": reply.get("combined_epoch")}
                       for reply in replies],
        }

    # ------------------------------------------------------------------ #
    # Observability fan-in.
    # ------------------------------------------------------------------ #

    def health(self) -> List[Dict[str, Any]]:
        """Per-shard health; an unreachable shard reports an error entry."""
        reports = []
        for shard_id, client in enumerate(self.clients):
            try:
                report = client.call({"op": "health"})
                report.pop("ok", None)
                reports.append(report)
            except Exception as error:  # noqa: BLE001 - health must degrade
                reports.append({"shard": shard_id, "status": "unreachable",
                                "error": str(error)})
        return reports

    def stats(self) -> List[Dict[str, Any]]:
        reports = []
        for shard_id, client in enumerate(self.clients):
            try:
                report = client.call({"op": "stats"})
                report.pop("ok", None)
                reports.append(report)
            except Exception as error:  # noqa: BLE001 - stats must degrade
                reports.append({"shard": shard_id, "status": "unreachable",
                                "error": str(error)})
        return reports


class ClusterIndex(TripleIndex):
    """The cluster behind the single-box :class:`TripleIndex` interface.

    Implements only the mandatory surface; deliberately no
    ``seek_cursor``/``select_values``, so the wcoj executor takes its
    materialising fallback — per-pattern scatter instead of per-seek
    network round trips.
    """

    name = "cluster"

    def __init__(self, cluster: ClusterClient):
        self._cluster = cluster
        self._epoch = 0
        self._size_estimate: Optional[int] = None

    @property
    def cluster(self) -> ClusterClient:
        return self._cluster

    @property
    def epoch(self) -> int:
        """The coordinator's write epoch: bumped on every routed write or
        compaction, carried in every result-cache key, so cached pages
        die with the data that produced them."""
        return self._epoch

    def bump_epoch(self) -> None:
        self._epoch += 1

    def select(self, pattern) -> Iterator[Tuple[int, int, int]]:
        terms = TriplePattern.from_tuple(pattern).as_tuple()
        return self._cluster.select(terms)

    @property
    def num_triples(self) -> int:
        total = 0
        for report in self._cluster.health():
            total += int(report.get("num_triples", 0))
        return total

    def size_in_bits(self) -> int:
        total = 0
        for report in self._cluster.stats():
            total += int(report.get("primary", {})
                         .get("index", {}).get("size_in_bits", 0))
        return total
