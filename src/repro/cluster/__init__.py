"""Sharded-cluster serving: partitioner, shard servers, coordinator.

The subsystem that turns the single-box server into a horizontally
scalable system (see ``docs/ARCHITECTURE.md``, "Cluster topology"):

* :mod:`repro.cluster.partition` — hash-partition a built container into
  K subject-routed primary shards + object-routed replicas, with a
  signed ``manifest.json``;
* :mod:`repro.cluster.rpc` — the length-prefixed JSON RPC every cluster
  process (and the pre-fork pool's writer channel) speaks;
* :mod:`repro.cluster.shard` — one shard's serve stack behind that RPC
  (``repro shard``);
* :mod:`repro.cluster.client` / :mod:`repro.cluster.coordinator` — the
  scatter-gather coordinator and its HTTP front (``repro coordinator``).

This package root stays import-light (framing + partitioning only):
:mod:`repro.service.pool` imports the RPC framing from here, so pulling
the coordinator stack in eagerly would cycle back into the service
package.  Import the heavier submodules explicitly.
"""

from repro.cluster.partition import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    META_NAME,
    build_cluster,
    load_cluster_meta,
    read_manifest,
    shard_of,
    splitmix64,
    write_manifest,
)
from repro.cluster.rpc import (
    FRAME,
    MAX_FRAME_BYTES,
    RpcClient,
    RpcServer,
    read_frame,
    recv_exactly,
    send_frame,
)

__all__ = [
    "MANIFEST_NAME", "MANIFEST_VERSION", "META_NAME",
    "build_cluster", "load_cluster_meta", "read_manifest",
    "shard_of", "splitmix64", "write_manifest",
    "FRAME", "MAX_FRAME_BYTES", "RpcClient", "RpcServer",
    "read_frame", "recv_exactly", "send_frame",
]
