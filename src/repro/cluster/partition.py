"""Hash-partitioning a built index into K shard containers + a manifest.

The partitioning scheme is the classic distributed-RDF one: dictionary-
encoded triples are routed by **subject hash** into K primary shards, so
any subject-rooted lookup — and any star join around one subject —
touches exactly one shard.  Because object- and predicate-rooted lookups
would otherwise degrade to broadcasts, every shard also gets a
**replica** container holding the triples whose *object* hashes to it
(stored in an object-rooted layout), keeping ``(?, ?, o)`` point lookups
single-shard and the wcoj leapfrog's per-pattern probes cheap in both
directions.  Primary and replica are two complete, disjoint partitions
of the same triple set; a query pattern is routed through exactly one of
them, so nothing is ever double-counted.

Routing must be stable across processes, machines and Python versions,
so the hash is a fixed **splitmix64** finalizer over the component ID —
never ``hash()``, which is salted per process.

Every shard container is a self-sufficient ordinary index file (it
carries the full dictionary and shard-local planner statistics), so the
existing single-box tooling — ``repro query``, ``repro serve``,
``repro info``, ``repro verify`` — works on a shard unchanged.  A
``cluster-meta.repro`` container carries the dictionary and the *global*
planner statistics for the coordinator.

The **manifest** (``manifest.json``) names every container, records the
partitioning scheme and counts, and is signed with HMAC-SHA256 over its
canonical JSON form.  :func:`read_manifest` refuses an unsigned or
tampered manifest — a coordinator must never scatter queries over a
shard map it cannot trust.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core import build_index
from repro.errors import ClusterError, StorageError
from repro.queries.planner import QueryPlanner
from repro.rdf.triples import TripleStore
from repro.storage.container import read_container, write_container
from repro.storage.index_io import (
    SECTION_DICTIONARY,
    SECTION_META,
    SECTION_STATS,
    _dump_meta,
    _dump_planner_stats,
    _load_meta,
    _load_planner_stats,
    load_index,
)
from repro.storage.codecs import dumps_object, loads_object

MANIFEST_VERSION = 2
#: Manifest versions this build can read.  Version 1 (PR 7) predates
#: replication and topology versioning; it normalises to ``num_replicas=1``
#: and topology ``version=1`` on read.
SUPPORTED_MANIFEST_VERSIONS = (1, 2)
MANIFEST_NAME = "manifest.json"
META_NAME = "cluster-meta.repro"
PARTITION_SCHEME = "splitmix64-mod"

#: The default signing key.  HMAC with a published key is an integrity
#: check (it catches corruption and accidental edits); operators who want
#: tamper evidence pass their own key (``--key`` / ``REPRO_CLUSTER_KEY``).
DEFAULT_KEY = "repro-cluster-manifest-v1"


def manifest_key(key: Optional[str] = None) -> bytes:
    """Resolve the signing key: explicit > ``REPRO_CLUSTER_KEY`` > default."""
    if key is None:
        key = os.environ.get("REPRO_CLUSTER_KEY") or DEFAULT_KEY
    return key.encode("utf-8")


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a fixed, well-mixed 64-bit permutation."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def shard_of(component_id: int, num_shards: int) -> int:
    """The shard owning ``component_id`` under the fixed routing hash."""
    return splitmix64(int(component_id)) % num_shards


# --------------------------------------------------------------------------- #
# Manifest.
# --------------------------------------------------------------------------- #

def _canonical(manifest: dict) -> bytes:
    return json.dumps(manifest, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def sign_manifest(manifest: dict, key: Optional[str] = None) -> str:
    return hmac.new(manifest_key(key), _canonical(manifest),
                    hashlib.sha256).hexdigest()


def write_manifest(path, manifest: dict, key: Optional[str] = None) -> None:
    document = {"manifest": manifest,
                "signature": sign_manifest(manifest, key)}
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")


def read_manifest(path, key: Optional[str] = None) -> dict:
    """Load and verify a manifest; raises :class:`ClusterError` when the
    signature does not match (wrong key, or a tampered/corrupt file)."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ClusterError(f"cannot read manifest {path}: {exc}") from exc
    manifest = document.get("manifest")
    signature = document.get("signature")
    if not isinstance(manifest, dict) or not isinstance(signature, str):
        raise ClusterError(f"{path}: not a shard manifest")
    expected = sign_manifest(manifest, key)
    if not hmac.compare_digest(expected, signature):
        raise ClusterError(
            f"{path}: manifest signature mismatch — wrong key or the "
            f"manifest was modified after signing")
    version = int(manifest.get("manifest_version", 0))
    if version not in SUPPORTED_MANIFEST_VERSIONS:
        raise ClusterError(
            f"{path}: manifest version {version} not supported "
            f"(this build reads versions {SUPPORTED_MANIFEST_VERSIONS})")
    # Normalise version-1 manifests to the version-2 vocabulary so every
    # consumer sees one shape.
    manifest.setdefault("num_replicas", 1)
    manifest.setdefault("version", 1)
    return manifest


# --------------------------------------------------------------------------- #
# Cluster meta container (dictionary + global planner stats).
# --------------------------------------------------------------------------- #

def _write_cluster_meta(path, dictionary, planner_stats, meta: dict) -> int:
    sections: Dict[str, bytes] = {SECTION_META: _dump_meta(meta)}
    if dictionary is not None:
        sections[SECTION_DICTIONARY] = dumps_object(dictionary)
    if planner_stats is not None:
        sections[SECTION_STATS] = _dump_planner_stats(planner_stats)
    return write_container(path, sections)


def load_cluster_meta(path) -> Tuple[Optional[object], Optional[dict], dict]:
    """``(dictionary, planner_stats, meta)`` from ``cluster-meta.repro``."""
    sections = read_container(path)
    meta = _load_meta(sections, str(path))
    if meta.get("kind") != "cluster-meta":
        raise StorageError(f"{path}: not a cluster meta container")
    dictionary = (loads_object(sections[SECTION_DICTIONARY])
                  if SECTION_DICTIONARY in sections else None)
    planner_stats = (_load_planner_stats(sections[SECTION_STATS], str(path))
                     if SECTION_STATS in sections else None)
    return dictionary, planner_stats, meta


# --------------------------------------------------------------------------- #
# Partitioning.
# --------------------------------------------------------------------------- #

def _shard_save(triples: List[Tuple[int, int, int]], path, layout: str,
                dictionary, aligned: bool) -> dict:
    store = TripleStore.from_triples(triples)
    index = build_index(store, layout)
    stats = QueryPlanner.cardinalities_from_store(store)
    from repro.storage import save_index
    size = save_index(index, path, dictionary=dictionary,
                      planner_stats=stats, aligned=aligned)
    return {"num_triples": int(index.num_triples), "bytes": int(size)}


def _partition_triples(triples, num_shards: int, with_replicas: bool
                       ) -> Tuple[List[List[Tuple[int, int, int]]],
                                  List[List[Tuple[int, int, int]]], int]:
    """Route an iterable of triples into per-shard primary/replica lists."""
    primary: List[List[Tuple[int, int, int]]] = [[] for _ in range(num_shards)]
    replica: List[List[Tuple[int, int, int]]] = [[] for _ in range(num_shards)]
    total = 0
    for triple in triples:
        total += 1
        primary[shard_of(triple[0], num_shards)].append(triple)
        if with_replicas:
            replica[shard_of(triple[2], num_shards)].append(triple)
    return primary, replica, total


def _write_shards(out: Path, primary, replica, num_shards: int, layout: str,
                  replica_layout: str, with_replicas: bool, dictionary,
                  aligned: bool) -> List[dict]:
    """Write every shard container; returns the manifest ``shards`` list.

    A shard that received no triples on a side still gets a valid (empty)
    container: skewed small datasets with a large K legitimately leave
    hash buckets empty, and an empty shard answers every pattern with
    zero rows — exactly the right contribution to a scatter.
    """
    shards = []
    for shard in range(num_shards):
        primary_name = f"shard-{shard:03d}.repro"
        primary_info = _shard_save(primary[shard], out / primary_name,
                                   layout, dictionary, aligned)
        entry = {
            "id": shard,
            "primary": primary_name,
            "replica": None,
            "num_triples": primary_info["num_triples"],
            "replica_num_triples": 0,
        }
        if with_replicas:
            replica_name = f"shard-{shard:03d}-replica.repro"
            replica_info = _shard_save(replica[shard], out / replica_name,
                                       replica_layout, dictionary, aligned)
            entry["replica"] = replica_name
            entry["replica_num_triples"] = replica_info["num_triples"]
        shards.append(entry)
    return shards


def build_cluster(source_path, out_dir, num_shards: int,
                  layout: Optional[str] = None,
                  replica_layout: str = "2to",
                  key: Optional[str] = None,
                  aligned: bool = True,
                  mmap: bool = False,
                  num_replicas: int = 1) -> dict:
    """Partition a built index container into ``num_shards`` shard files.

    Writes, under ``out_dir``: ``shard-NNN.repro`` (subject-partitioned
    primary, in ``layout`` — default: the source's layout),
    ``shard-NNN-replica.repro`` (object-partitioned POS-style replica, in
    ``replica_layout``; ``"none"`` skips replicas and object-routed
    lookups broadcast instead), ``cluster-meta.repro`` and a signed
    ``manifest.json``.  Returns the manifest.

    ``num_replicas`` records how many serving processes each shard's
    containers are assigned to (R-way process replication over shared
    storage): replica 0 is the shard's leader (writable, WAL + epoch
    publication), replicas 1..R-1 are read-only followers tailing the
    leader's WAL.  The containers themselves are written once — the
    processes share them.

    A shard that receives no triples on a side gets a valid empty
    container (small or skewed data with a large K is legitimate).
    """
    if num_shards < 1:
        raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
    if num_replicas < 1:
        raise ClusterError(f"num_replicas must be >= 1, got {num_replicas}")
    with_replicas = replica_layout not in (None, "none")
    loaded = load_index(source_path, mmap=mmap)
    if loaded.dictionary is None:
        raise ClusterError(
            f"{source_path}: container has no dictionary section; "
            f"partitioning needs the full dictionary to replicate it "
            f"into every shard")
    index = loaded.queryable()
    layout = layout or loaded.meta.get("layout", "2tp")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    primary, replica, total = _partition_triples(
        index.select((None, None, None)), num_shards, with_replicas)
    shards = _write_shards(out, primary, replica, num_shards, layout,
                           replica_layout, with_replicas, loaded.dictionary,
                           aligned)

    global_stats = loaded.planner_stats
    if global_stats is None:
        # Recompute from the full data so the coordinator can plan.
        store = TripleStore.from_triples(index.select((None, None, None)))
        global_stats = QueryPlanner.cardinalities_from_store(store)
    _write_cluster_meta(out / META_NAME, loaded.dictionary, global_stats,
                        {"kind": "cluster-meta", "num_shards": num_shards,
                         "num_triples": total})

    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "partition": {"scheme": PARTITION_SCHEME,
                      "primary_key": "subject", "replica_key": "object"},
        "num_shards": num_shards,
        "num_replicas": int(num_replicas),
        "version": 1,
        "num_triples": total,
        "layout": layout,
        "replica_layout": replica_layout,
        "meta_container": META_NAME,
        "shards": shards,
        "source": str(source_path),
    }
    write_manifest(out / MANIFEST_NAME, manifest, key)
    return manifest


# --------------------------------------------------------------------------- #
# Rebalancing.
# --------------------------------------------------------------------------- #

def _shard_triples_with_wal(path) -> Iterator[Tuple[int, int, int]]:
    """Every triple a shard container holds, WAL tail included.

    Loads the container (base + any persisted delta) and folds in the
    shard's WAL file if one exists beside it — the same replay the shard
    server performs on restart, so rebalancing sees exactly the
    acknowledged state.
    """
    from repro.dynamic.delta import DeltaState
    from repro.dynamic.index import SnapshotIndex
    from repro.storage.wal import WalReader

    loaded = load_index(path)
    base = loaded.index
    delta = loaded.delta or DeltaState.empty()
    wal_path = Path(str(path) + ".wal")
    if wal_path.exists():
        for inserts, deletes in WalReader(wal_path).read():
            delta, _, _ = delta.apply(base, inserts=inserts, deletes=deletes,
                                      validate=False)
    return SnapshotIndex(base, delta, epoch=0).select((None, None, None))


def rebalance_cluster(cluster_dir, num_shards: int,
                      key: Optional[str] = None,
                      aligned: bool = True,
                      num_replicas: Optional[int] = None) -> dict:
    """Repartition an existing cluster directory to ``num_shards`` shards.

    An offline, manifest-versioned move: every current shard's primary
    container is loaded (with its WAL tail folded in, so no acknowledged
    write is lost), the union is re-routed under the same splitmix64
    scheme, fresh shard containers are written, and a new manifest is
    signed with its topology ``version`` incremented.  Stale WAL/epoch
    sidecar files and out-of-range shard containers are removed — the
    folded-in WALs must not be replayed over the rebuilt containers.

    Shard servers must be stopped while rebalancing (it rewrites the
    files under them); ``repro verify`` checks the result.
    """
    if num_shards < 1:
        raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
    cluster = Path(cluster_dir)
    manifest = read_manifest(cluster / MANIFEST_NAME, key)
    with_replicas = manifest.get("replica_layout") not in (None, "none")
    layout = manifest.get("layout", "2tp")
    replica_layout = manifest.get("replica_layout", "none")
    if num_replicas is None:
        num_replicas = int(manifest.get("num_replicas", 1))
    if num_replicas < 1:
        raise ClusterError(f"num_replicas must be >= 1, got {num_replicas}")

    # Primaries partition the triple set, so chaining them (WAL included)
    # reproduces the full data exactly once.
    def all_triples():
        for entry in manifest["shards"]:
            yield from _shard_triples_with_wal(cluster / entry["primary"])

    primary, replica, total = _partition_triples(
        all_triples(), num_shards, with_replicas)

    dictionary, global_stats, _ = load_cluster_meta(
        cluster / manifest.get("meta_container", META_NAME))
    if dictionary is None:
        raise ClusterError(
            f"{cluster}: cluster meta container has no dictionary")

    # Remove every stale sidecar first: the old WALs are folded into the
    # new containers and must never be replayed again.
    for pattern in ("shard-*.repro.wal", "shard-*.repro.epoch"):
        for stale in cluster.glob(pattern):
            stale.unlink()

    shards = _write_shards(cluster, primary, replica, num_shards, layout,
                           replica_layout, with_replicas, dictionary, aligned)

    # Drop containers beyond the new shard count (shrinking K).
    for stale in cluster.glob("shard-*.repro"):
        if not any(stale.name in (entry["primary"], entry.get("replica"))
                   for entry in shards):
            stale.unlink()

    store = TripleStore.from_triples(
        triple for bucket in primary for triple in bucket)
    global_stats = QueryPlanner.cardinalities_from_store(store)
    _write_cluster_meta(cluster / META_NAME, dictionary, global_stats,
                        {"kind": "cluster-meta", "num_shards": num_shards,
                         "num_triples": total})

    new_manifest = dict(manifest)
    new_manifest.update({
        "manifest_version": MANIFEST_VERSION,
        "num_shards": num_shards,
        "num_replicas": int(num_replicas),
        "version": int(manifest.get("version", 1)) + 1,
        "num_triples": total,
        "layout": layout,
        "replica_layout": replica_layout,
        "shards": shards,
    })
    write_manifest(cluster / MANIFEST_NAME, new_manifest, key)
    return new_manifest
