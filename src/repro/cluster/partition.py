"""Hash-partitioning a built index into K shard containers + a manifest.

The partitioning scheme is the classic distributed-RDF one: dictionary-
encoded triples are routed by **subject hash** into K primary shards, so
any subject-rooted lookup — and any star join around one subject —
touches exactly one shard.  Because object- and predicate-rooted lookups
would otherwise degrade to broadcasts, every shard also gets a
**replica** container holding the triples whose *object* hashes to it
(stored in an object-rooted layout), keeping ``(?, ?, o)`` point lookups
single-shard and the wcoj leapfrog's per-pattern probes cheap in both
directions.  Primary and replica are two complete, disjoint partitions
of the same triple set; a query pattern is routed through exactly one of
them, so nothing is ever double-counted.

Routing must be stable across processes, machines and Python versions,
so the hash is a fixed **splitmix64** finalizer over the component ID —
never ``hash()``, which is salted per process.

Every shard container is a self-sufficient ordinary index file (it
carries the full dictionary and shard-local planner statistics), so the
existing single-box tooling — ``repro query``, ``repro serve``,
``repro info``, ``repro verify`` — works on a shard unchanged.  A
``cluster-meta.repro`` container carries the dictionary and the *global*
planner statistics for the coordinator.

The **manifest** (``manifest.json``) names every container, records the
partitioning scheme and counts, and is signed with HMAC-SHA256 over its
canonical JSON form.  :func:`read_manifest` refuses an unsigned or
tampered manifest — a coordinator must never scatter queries over a
shard map it cannot trust.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core import build_index
from repro.errors import ClusterError, StorageError
from repro.queries.planner import QueryPlanner
from repro.rdf.triples import TripleStore
from repro.storage.container import read_container, write_container
from repro.storage.index_io import (
    SECTION_DICTIONARY,
    SECTION_META,
    SECTION_STATS,
    _dump_meta,
    _dump_planner_stats,
    _load_meta,
    _load_planner_stats,
    load_index,
)
from repro.storage.codecs import dumps_object, loads_object

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
META_NAME = "cluster-meta.repro"
PARTITION_SCHEME = "splitmix64-mod"

#: The default signing key.  HMAC with a published key is an integrity
#: check (it catches corruption and accidental edits); operators who want
#: tamper evidence pass their own key (``--key`` / ``REPRO_CLUSTER_KEY``).
DEFAULT_KEY = "repro-cluster-manifest-v1"


def manifest_key(key: Optional[str] = None) -> bytes:
    """Resolve the signing key: explicit > ``REPRO_CLUSTER_KEY`` > default."""
    if key is None:
        key = os.environ.get("REPRO_CLUSTER_KEY") or DEFAULT_KEY
    return key.encode("utf-8")


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a fixed, well-mixed 64-bit permutation."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def shard_of(component_id: int, num_shards: int) -> int:
    """The shard owning ``component_id`` under the fixed routing hash."""
    return splitmix64(int(component_id)) % num_shards


# --------------------------------------------------------------------------- #
# Manifest.
# --------------------------------------------------------------------------- #

def _canonical(manifest: dict) -> bytes:
    return json.dumps(manifest, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def sign_manifest(manifest: dict, key: Optional[str] = None) -> str:
    return hmac.new(manifest_key(key), _canonical(manifest),
                    hashlib.sha256).hexdigest()


def write_manifest(path, manifest: dict, key: Optional[str] = None) -> None:
    document = {"manifest": manifest,
                "signature": sign_manifest(manifest, key)}
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")


def read_manifest(path, key: Optional[str] = None) -> dict:
    """Load and verify a manifest; raises :class:`ClusterError` when the
    signature does not match (wrong key, or a tampered/corrupt file)."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ClusterError(f"cannot read manifest {path}: {exc}") from exc
    manifest = document.get("manifest")
    signature = document.get("signature")
    if not isinstance(manifest, dict) or not isinstance(signature, str):
        raise ClusterError(f"{path}: not a shard manifest")
    expected = sign_manifest(manifest, key)
    if not hmac.compare_digest(expected, signature):
        raise ClusterError(
            f"{path}: manifest signature mismatch — wrong key or the "
            f"manifest was modified after signing")
    version = int(manifest.get("manifest_version", 0))
    if version != MANIFEST_VERSION:
        raise ClusterError(
            f"{path}: manifest version {version} not supported "
            f"(this build reads version {MANIFEST_VERSION})")
    return manifest


# --------------------------------------------------------------------------- #
# Cluster meta container (dictionary + global planner stats).
# --------------------------------------------------------------------------- #

def _write_cluster_meta(path, dictionary, planner_stats, meta: dict) -> int:
    sections: Dict[str, bytes] = {SECTION_META: _dump_meta(meta)}
    if dictionary is not None:
        sections[SECTION_DICTIONARY] = dumps_object(dictionary)
    if planner_stats is not None:
        sections[SECTION_STATS] = _dump_planner_stats(planner_stats)
    return write_container(path, sections)


def load_cluster_meta(path) -> Tuple[Optional[object], Optional[dict], dict]:
    """``(dictionary, planner_stats, meta)`` from ``cluster-meta.repro``."""
    sections = read_container(path)
    meta = _load_meta(sections, str(path))
    if meta.get("kind") != "cluster-meta":
        raise StorageError(f"{path}: not a cluster meta container")
    dictionary = (loads_object(sections[SECTION_DICTIONARY])
                  if SECTION_DICTIONARY in sections else None)
    planner_stats = (_load_planner_stats(sections[SECTION_STATS], str(path))
                     if SECTION_STATS in sections else None)
    return dictionary, planner_stats, meta


# --------------------------------------------------------------------------- #
# Partitioning.
# --------------------------------------------------------------------------- #

def _shard_save(triples: List[Tuple[int, int, int]], path, layout: str,
                dictionary, aligned: bool) -> dict:
    store = TripleStore.from_triples(triples)
    index = build_index(store, layout)
    stats = QueryPlanner.cardinalities_from_store(store)
    from repro.storage import save_index
    size = save_index(index, path, dictionary=dictionary,
                      planner_stats=stats, aligned=aligned)
    return {"num_triples": int(index.num_triples), "bytes": int(size)}


def build_cluster(source_path, out_dir, num_shards: int,
                  layout: Optional[str] = None,
                  replica_layout: str = "2to",
                  key: Optional[str] = None,
                  aligned: bool = True,
                  mmap: bool = False) -> dict:
    """Partition a built index container into ``num_shards`` shard files.

    Writes, under ``out_dir``: ``shard-NNN.repro`` (subject-partitioned
    primary, in ``layout`` — default: the source's layout),
    ``shard-NNN-replica.repro`` (object-partitioned POS-style replica, in
    ``replica_layout``; ``"none"`` skips replicas and object-routed
    lookups broadcast instead), ``cluster-meta.repro`` and a signed
    ``manifest.json``.  Returns the manifest.

    A shard that would receive no triples on either side is an error:
    the data has too few distinct subjects/objects for ``num_shards``.
    """
    if num_shards < 1:
        raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
    with_replicas = replica_layout not in (None, "none")
    loaded = load_index(source_path, mmap=mmap)
    if loaded.dictionary is None:
        raise ClusterError(
            f"{source_path}: container has no dictionary section; "
            f"partitioning needs the full dictionary to replicate it "
            f"into every shard")
    index = loaded.queryable()
    layout = layout or loaded.meta.get("layout", "2tp")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    primary: List[List[Tuple[int, int, int]]] = [[] for _ in range(num_shards)]
    replica: List[List[Tuple[int, int, int]]] = [[] for _ in range(num_shards)]
    total = 0
    for triple in index.select((None, None, None)):
        total += 1
        primary[shard_of(triple[0], num_shards)].append(triple)
        if with_replicas:
            replica[shard_of(triple[2], num_shards)].append(triple)
    for shard in range(num_shards):
        if not primary[shard] or (with_replicas and not replica[shard]):
            side = "subjects" if not primary[shard] else "objects"
            raise ClusterError(
                f"shard {shard} of {num_shards} would be empty (no {side} "
                f"hash to it); the data is too small for this shard "
                f"count — reduce --shards")

    shards = []
    for shard in range(num_shards):
        primary_name = f"shard-{shard:03d}.repro"
        primary_info = _shard_save(primary[shard], out / primary_name,
                                   layout, loaded.dictionary, aligned)
        entry = {
            "id": shard,
            "primary": primary_name,
            "replica": None,
            "num_triples": primary_info["num_triples"],
            "replica_num_triples": 0,
        }
        if with_replicas:
            replica_name = f"shard-{shard:03d}-replica.repro"
            replica_info = _shard_save(replica[shard], out / replica_name,
                                       replica_layout, loaded.dictionary,
                                       aligned)
            entry["replica"] = replica_name
            entry["replica_num_triples"] = replica_info["num_triples"]
        shards.append(entry)

    global_stats = loaded.planner_stats
    if global_stats is None:
        # Recompute from the full data so the coordinator can plan.
        store = TripleStore.from_triples(index.select((None, None, None)))
        global_stats = QueryPlanner.cardinalities_from_store(store)
    _write_cluster_meta(out / META_NAME, loaded.dictionary, global_stats,
                        {"kind": "cluster-meta", "num_shards": num_shards,
                         "num_triples": total})

    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "partition": {"scheme": PARTITION_SCHEME,
                      "primary_key": "subject", "replica_key": "object"},
        "num_shards": num_shards,
        "num_triples": total,
        "layout": layout,
        "replica_layout": replica_layout,
        "meta_container": META_NAME,
        "shards": shards,
        "source": str(source_path),
    }
    write_manifest(out / MANIFEST_NAME, manifest, key)
    return manifest
