"""Exception hierarchy shared across the repro package.

Keeping a single, small hierarchy lets callers catch ``ReproError`` to handle
any library failure, or the narrower subclasses for programmatic handling.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class EncodingError(ReproError):
    """A sequence could not be encoded with the requested codec.

    Typical causes: a non-monotone input handed to a monotone-only codec
    (Elias-Fano family), negative values, or values exceeding the declared
    universe.
    """


class DecodingError(ReproError):
    """A compressed payload is malformed or truncated."""


class IndexBuildError(ReproError):
    """The triple index could not be constructed from the given data."""


class PatternError(ReproError):
    """A triple selection pattern is malformed or unsupported by the index."""


class DictionaryError(ReproError):
    """String-dictionary lookups or construction failed."""


class ParseError(ReproError):
    """Raised for malformed N-Triples or SPARQL input."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset profile or generator is misconfigured."""


class QueryTimeoutError(ReproError):
    """A query exceeded its wall-clock execution budget.

    Raised from the streaming BGP executor when a ``timeout`` was given; the
    serving layer maps it to an HTTP 408 so one slow query cannot occupy a
    worker thread forever.
    """


class UpdateError(ReproError):
    """A dynamic update (insert / delete / compact) could not be applied.

    Typical causes: a malformed triple (wrong arity, negative component),
    an update aimed at a read-only index, or a compaction that would leave
    nothing to index.
    """


class ServiceError(ReproError):
    """The query service received a request it cannot execute.

    Typical causes: a malformed request body, a batch entry that is neither a
    SPARQL string nor a pattern, or a request exceeding server-side limits.
    """


class ClusterError(ReproError):
    """A sharded-cluster operation failed.

    Typical causes: a manifest that does not verify against its signing
    key, a shard count that leaves a shard empty, or a coordinator asked
    to route to a shard the manifest does not describe.
    """


class ShardUnavailableError(ClusterError):
    """A shard could not be reached (after retries) for a required reply.

    The coordinator maps this to HTTP 503 in fail-fast mode; best-effort
    mode swallows it per shard and marks the response ``incomplete``.
    """


class NotLeaderError(ClusterError):
    """A write or compaction was sent to a follower replica.

    Followers serve reads only; the coordinator reacts by promoting a
    replica (after the leader is confirmed dead) or redirecting the write
    to the current leader.
    """


class StorageError(ReproError):
    """A persisted index file cannot be written or read back.

    Typical causes: a file that is not a repro container (bad magic), a
    format version this build does not understand, checksum mismatches from
    on-disk corruption, truncated payloads, or an object graph containing a
    type with no registered serializer.
    """
