"""Execution spans, query profiles and the trace-context codec.

A :class:`QueryProfile` is one query's worth of tracing: a ``trace_id``
shared by every participant (client, coordinator, shards) plus a tree of
:class:`Span` nodes.  The service records ``parse`` / ``plan`` / ``execute``
spans; the engines hang one operator span per plan level (nested loop) or
per variable level (leapfrog) underneath, carrying the counters collected
by :class:`OperatorCounters`.  Profiles serialise to plain JSON dicts so
they travel on the existing wire/RPC frames unchanged.

Trace context is two fields — ``trace_id`` and ``parent_span_id`` — that a
caller attaches to an outgoing request so the callee's profile stitches
into the caller's tree.  Both are lowercase hex; anything else (a hostile
``X-Trace-Id`` header, say) is silently dropped rather than propagated.
"""

from __future__ import annotations

import os
import re
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "OperatorCounters",
    "QueryProfile",
    "Span",
    "decode_trace_context",
    "encode_trace_context",
    "new_span_id",
    "new_trace_id",
]

#: Accepted wire form of a trace/span id: 8–64 lowercase hex characters.
_ID_PATTERN = re.compile(r"^[0-9a-f]{8,64}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex characters)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex characters)."""
    return os.urandom(8).hex()


def _valid_id(value: Any) -> Optional[str]:
    if isinstance(value, str) and _ID_PATTERN.match(value):
        return value
    return None


def encode_trace_context(trace_id: Optional[str],
                         parent_span_id: Optional[str] = None
                         ) -> Dict[str, str]:
    """The trace fields attached to an outgoing request frame."""
    context: Dict[str, str] = {}
    if _valid_id(trace_id):
        context["trace_id"] = trace_id
    if _valid_id(parent_span_id):
        context["parent_span_id"] = parent_span_id
    return context


def decode_trace_context(payload: Any
                         ) -> Tuple[Optional[str], Optional[str]]:
    """``(trace_id, parent_span_id)`` from a request frame, validated.

    Tolerant by design: missing, malformed or non-hex fields decode to
    ``None`` (the callee then starts its own trace) instead of raising —
    trace context is metadata from a possibly-untrusted client and must
    never fail a query.
    """
    if not isinstance(payload, dict):
        return None, None
    return (_valid_id(payload.get("trace_id")),
            _valid_id(payload.get("parent_span_id")))


class Span:
    """One timed node in a profile tree.

    ``counters`` holds integer tallies (seeks, blocks, ...), ``attrs``
    free-form metadata (engine choice, estimated cardinality, ...).
    Operator spans aggregated from :class:`OperatorCounters` carry no
    timing of their own (``elapsed_ms`` 0): per-visit clocks would cost
    more than the work they measure, so only the stage spans are timed.
    """

    __slots__ = ("name", "span_id", "parent_span_id", "counters", "attrs",
                 "children", "elapsed_seconds", "_started")

    def __init__(self, name: str, parent_span_id: Optional[str] = None,
                 span_id: Optional[str] = None):
        self.name = str(name)
        self.span_id = span_id or new_span_id()
        self.parent_span_id = parent_span_id
        self.counters: Dict[str, int] = {}
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.elapsed_seconds = 0.0
        self._started = time.perf_counter()

    def child(self, name: str) -> "Span":
        span = Span(name, parent_span_id=self.span_id)
        self.children.append(span)
        return span

    def add(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def finish(self) -> "Span":
        if not self.elapsed_seconds:
            self.elapsed_seconds = time.perf_counter() - self._started
        return self

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """The first span named ``name`` in this subtree, if any."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "elapsed_ms": round(self.elapsed_seconds * 1e3, 3),
        }
        if self.parent_span_id is not None:
            doc["parent_span_id"] = self.parent_span_id
        if self.counters:
            doc["counters"] = dict(self.counters)
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["children"] = [child.to_json() for child in self.children]
        return doc

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Span":
        span = cls(payload.get("name", "?"),
                   parent_span_id=payload.get("parent_span_id"),
                   span_id=payload.get("span_id"))
        span.elapsed_seconds = float(payload.get("elapsed_ms", 0.0)) / 1e3
        span.counters = dict(payload.get("counters") or {})
        span.attrs = dict(payload.get("attrs") or {})
        span.children = [cls.from_json(child)
                         for child in payload.get("children") or []]
        return span


class QueryProfile:
    """One query's trace: a shared ``trace_id`` plus a span tree."""

    __slots__ = ("trace_id", "root")

    def __init__(self, name: str = "query",
                 trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None):
        self.trace_id = _valid_id(trace_id) or new_trace_id()
        self.root = Span(name, parent_span_id=parent_span_id)

    def span(self, name: str) -> Span:
        return self.root.child(name)

    def finish(self) -> "QueryProfile":
        self.root.finish()
        return self

    def to_json(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "root": self.root.to_json()}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "QueryProfile":
        profile = cls(trace_id=payload.get("trace_id"))
        profile.root = Span.from_json(payload.get("root") or {})
        return profile


class OperatorCounters:
    """Per-operator tallies one engine level fills in while it runs.

    The engines hold a list of these (one per plan level / variable
    level) only when profiling is on; the unprofiled hot path pays a
    single ``is None`` test per level visit.  Counters are bumped at
    block granularity wherever a block path exists; the scalar fallbacks
    accumulate into locals and flush once per level visit.
    """

    __slots__ = ("label", "estimate", "visits", "seeks", "blocks", "values",
                 "scanned", "bindings", "overlay_merges")

    def __init__(self, label: str, estimate: Optional[float] = None):
        self.label = label
        self.estimate = estimate
        self.visits = 0
        self.seeks = 0
        self.blocks = 0
        self.values = 0
        self.scanned = 0
        self.bindings = 0
        self.overlay_merges = 0

    def attach(self, parent: Span, kind: str) -> Span:
        """Materialise these tallies as an operator span under ``parent``."""
        span = parent.child(f"{kind}:{self.label}")
        for counter in ("visits", "seeks", "blocks", "values", "scanned",
                        "bindings", "overlay_merges"):
            value = getattr(self, counter)
            if value:
                span.counters[counter] = int(value)
        if self.estimate is not None:
            span.attrs["estimated"] = float(self.estimate)
        span.attrs["actual"] = int(self.bindings)
        span.elapsed_seconds = 0.0
        return span
