"""Observability: execution profiles, trace propagation, structured logs.

The package is deliberately dependency-free (stdlib only) so every layer —
query engines, the HTTP service, the pre-fork pool, the cluster RPC — can
import it without cycles:

* :mod:`repro.obs.spans` — the :class:`Span` / :class:`QueryProfile` tree
  recorded per query, the per-operator counters the engines fill in, and
  the trace-context codec carried on request frames;
* :mod:`repro.obs.slowlog` — the append-only JSONL slow-query log, safe
  under the pre-fork pool (single ``write()`` per line, bounded size);
* :mod:`repro.obs.logs` — one structured logger per subsystem
  (``--log-format json|text``);
* :mod:`repro.obs.explain` — the ``repro explain`` pretty-printer.
"""

from repro.obs.logs import StructuredLogger, get_logger
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import (
    OperatorCounters,
    QueryProfile,
    Span,
    decode_trace_context,
    encode_trace_context,
    new_span_id,
    new_trace_id,
)
from repro.obs.explain import render_profile

__all__ = [
    "OperatorCounters",
    "QueryProfile",
    "SlowQueryLog",
    "Span",
    "StructuredLogger",
    "decode_trace_context",
    "encode_trace_context",
    "get_logger",
    "new_span_id",
    "new_trace_id",
    "render_profile",
]
