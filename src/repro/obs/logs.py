"""Structured, per-subsystem loggers (``--log-format json|text``).

One stdlib :mod:`logging` logger per subsystem (``repro.http``,
``repro.pool``, ``repro.coordinator``, ...), wrapped in a tiny facade that
takes an event name plus keyword fields and renders either one JSON object
per line or a readable ``key=value`` text line.  The facade owns the
rendering so the two formats share one handler and the call sites never
build strings themselves::

    logger = get_logger("http", "json")
    logger.info("access", method="POST", path="/query", status=200,
                trace_id=trace_id, elapsed_ms=1.9)
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

__all__ = ["FORMATS", "StructuredLogger", "get_logger"]

FORMATS = ("text", "json")


def _text_value(value: Any) -> str:
    text = str(value)
    if " " in text or '"' in text or not text:
        return json.dumps(text)
    return text


class StructuredLogger:
    """One subsystem's logger; ``info("event", key=value, ...)``."""

    def __init__(self, subsystem: str, log_format: str = "text",
                 stream: Optional[TextIO] = None):
        if log_format not in FORMATS:
            raise ValueError(f"unknown log format {log_format!r}; "
                             f"expected one of {FORMATS}")
        self.subsystem = subsystem
        self.format = log_format
        self._logger = logging.getLogger(f"repro.{subsystem}")
        self._logger.setLevel(logging.INFO)
        self._logger.propagate = False
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        self._logger.handlers[:] = [handler]

    def info(self, event: str, **fields: Any) -> None:
        self._emit(logging.INFO, "info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit(logging.WARNING, "warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit(logging.ERROR, "error", event, fields)

    def _emit(self, levelno: int, level: str, event: str,
              fields: Dict[str, Any]) -> None:
        fields = {key: value for key, value in fields.items()
                  if value is not None}
        if self.format == "json":
            message = json.dumps(
                {"ts": round(time.time(), 6), "level": level,
                 "logger": self._logger.name, "event": event, **fields},
                separators=(",", ":"), default=str)
        else:
            pairs = " ".join(f"{key}={_text_value(value)}"
                             for key, value in fields.items())
            stamp = time.strftime("%d/%b/%Y %H:%M:%S")
            message = f"[{stamp}] {self._logger.name} {event}"
            if pairs:
                message += " " + pairs
        self._logger.log(levelno, "%s", message)


_registry: Dict[tuple, StructuredLogger] = {}
_registry_lock = threading.Lock()


def get_logger(subsystem: str, log_format: str = "text") -> StructuredLogger:
    """The (cached) structured logger for one subsystem + format."""
    key = (subsystem, log_format)
    with _registry_lock:
        logger = _registry.get(key)
        if logger is None:
            logger = _registry[key] = StructuredLogger(subsystem, log_format)
        return logger
