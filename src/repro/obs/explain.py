"""Render a query profile as an indented tree (``repro explain``).

Takes the JSON form a profiled query returns (``result.profile`` /
the ``"profile"`` field of a POST /query response) and prints one line
per span: name, wall time, the operator counters, and — for engine
operator spans — the planner's estimated cardinality next to the actual
bindings produced, the rows roadmap item 2's feedback loop consumes.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["render_profile"]

#: Counter display order (anything else appends alphabetically after).
_COUNTER_ORDER = ("visits", "seeks", "blocks", "values", "scanned",
                  "bindings", "overlay_merges", "rows", "attempts")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _span_line(span: Dict[str, Any]) -> str:
    parts = [str(span.get("name", "?"))]
    elapsed = float(span.get("elapsed_ms", 0.0) or 0.0)
    if elapsed:
        parts.append(f"{elapsed:.2f}ms")
    attrs = dict(span.get("attrs") or {})
    estimated = attrs.pop("estimated", None)
    actual = attrs.pop("actual", None)
    if estimated is not None or actual is not None:
        est = "?" if estimated is None else _format_value(float(estimated))
        act = "?" if actual is None else _format_value(actual)
        parts.append(f"est={est} act={act}")
    for key in sorted(attrs):
        parts.append(f"{key}={_format_value(attrs[key])}")
    counters = span.get("counters") or {}
    ordered = [key for key in _COUNTER_ORDER if key in counters]
    ordered += sorted(set(counters) - set(ordered))
    if ordered:
        parts.append("[" + " ".join(f"{key}={counters[key]}"
                                    for key in ordered) + "]")
    return "  ".join(parts)


def _render_span(span: Dict[str, Any], lines: List[str],
                 prefix: str, last: bool) -> None:
    connector = "└─ " if last else "├─ "
    lines.append(prefix + connector + _span_line(span))
    children = span.get("children") or []
    child_prefix = prefix + ("   " if last else "│  ")
    for position, child in enumerate(children):
        _render_span(child, lines, child_prefix,
                     position == len(children) - 1)


def render_profile(profile: Dict[str, Any]) -> str:
    """The profile tree as text, one line per span."""
    if not isinstance(profile, dict):
        return "(no profile)"
    root = profile.get("root") or {}
    lines = [f"trace {profile.get('trace_id', '?')}"]
    lines.append(_span_line(root))
    children = root.get("children") or []
    for position, child in enumerate(children):
        _render_span(child, lines, "", position == len(children) - 1)
    return "\n".join(lines)
