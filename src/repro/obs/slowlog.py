"""The structured slow-query log: one JSON line per offending query.

Multi-process safety is the whole design: the pre-fork pool has N worker
processes appending to one file, and a worker can be SIGKILLed mid-request.
Every record is therefore written as a **single** ``os.write`` to an
``O_APPEND`` descriptor, and every line is kept under
:data:`ATOMIC_LINE_BYTES` — within that bound POSIX appends do not
interleave, so a reader (or a crash) can never observe a torn line.
Records that would overflow the bound are shrunk (profile first, then the
query text) and marked ``"truncated": true`` rather than split.

The descriptor is (re)opened lazily per process, so a log constructed
before ``fork()`` is safe to hand to every worker.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Optional

__all__ = ["ATOMIC_LINE_BYTES", "SlowQueryLog"]

#: POSIX guarantees writes of up to PIPE_BUF bytes (>= 512, 4096 on Linux)
#: are atomic; a single write() to an O_APPEND regular file is likewise
#: never interleaved with concurrent appenders.  One line <= this bound is
#: the pool-safety contract.
ATOMIC_LINE_BYTES = 4096


class SlowQueryLog:
    """Append-only JSONL log of queries slower than ``threshold_ms``."""

    def __init__(self, path, threshold_ms: float = 500.0,
                 max_line_bytes: int = ATOMIC_LINE_BYTES):
        self.path = str(path)
        self.threshold_ms = float(threshold_ms)
        self.max_line_bytes = int(max_line_bytes)
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._pid: Optional[int] = None
        self.records_written = 0

    def should_log(self, elapsed_seconds: float) -> bool:
        return elapsed_seconds * 1e3 >= self.threshold_ms

    def record(self, entry: Dict[str, Any]) -> None:
        """Append one record (adds ``ts``/``pid``; never raises mid-query)."""
        doc = {"ts": round(time.time(), 6), "pid": os.getpid()}
        doc.update(entry)
        line = self._render(doc)
        try:
            with self._lock:
                os.write(self._file(), line)
                self.records_written += 1
        except OSError:
            # A full or vanished log disk must not fail the query itself.
            pass

    def close(self) -> None:
        with self._lock:
            if self._fd is not None and self._pid == os.getpid():
                os.close(self._fd)
            self._fd = None
            self._pid = None

    # ------------------------------------------------------------------ #

    def _file(self) -> int:
        # Reopen after fork: children must not share a pre-fork handle's
        # lifecycle (O_APPEND offsets are kernel-side either way, but a
        # per-process descriptor keeps close() semantics sane).
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            self._pid = pid
        return self._fd

    def _render(self, doc: Dict[str, Any]) -> bytes:
        line = _encode(doc)
        if len(line) <= self.max_line_bytes:
            return line
        # Too big for one atomic append: drop the profile body first (it
        # dominates), keeping the trace id so the record still correlates.
        slim = dict(doc)
        profile = slim.get("profile")
        if isinstance(profile, dict):
            slim["profile"] = {"trace_id": profile.get("trace_id")}
        slim["truncated"] = True
        line = _encode(slim)
        if len(line) <= self.max_line_bytes:
            return line
        # Still too big (a pathological query string): truncate it too.
        slim["query"] = str(slim.get("query", ""))[:512]
        line = _encode(slim)
        if len(line) <= self.max_line_bytes:
            return line
        return _encode({"ts": doc.get("ts"), "pid": doc.get("pid"),
                        "trace_id": doc.get("trace_id"),
                        "elapsed_ms": doc.get("elapsed_ms"),
                        "truncated": True})


def _encode(doc: Dict[str, Any]) -> bytes:
    return (json.dumps(doc, separators=(",", ":"), default=str) + "\n"
            ).encode("utf-8")
