"""Synthetic dataset generators.

The paper evaluates on dumps of 88 M – 2 B triples (DBLP, Geonames, DBpedia,
WatDiv, LUBM, Freebase) that cannot be shipped or processed here; the
generators in this package produce scaled-down datasets whose *shape
statistics* — the Table 3 distinct-count ratios and the Table 2
children-per-node statistics that drive every result in the paper — match the
original datasets, so the benchmarks exercise the same code paths and
reproduce the same relative behaviour.
"""

from repro.datasets.profiles import DATASET_PROFILES, DatasetProfile
from repro.datasets.synthetic import generate_from_profile, generate_uniform
from repro.datasets.lubm import LubmGenerator, generate_lubm
from repro.datasets.watdiv import WatDivDataset, WatDivGenerator, generate_watdiv

__all__ = [
    "DATASET_PROFILES",
    "DatasetProfile",
    "generate_from_profile",
    "generate_uniform",
    "LubmGenerator",
    "generate_lubm",
    "WatDivDataset",
    "WatDivGenerator",
    "generate_watdiv",
]
