"""WatDiv-like synthetic dataset (Waterloo SPARQL Diversity Test Suite).

WatDiv models an e-commerce domain — users, products, reviews, retailers,
genres — with a mix of well-structured entities (every product has a price)
and loosely structured ones, which is what makes its query templates stress
indexes in diverse ways.  This generator keeps that shape at reduced scale and
additionally assigns numeric literals (price, rating, age) IDs *in value
order* at the tail of the object ID space, exactly the ID-assignment scheme
the paper's Section 3.1 requires for range queries; the sorted values are
returned as a :class:`repro.rdf.dictionary.NumericIndex` (the ``R``
structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.rdf.dictionary import NumericIndex
from repro.rdf.triples import TripleStore

#: The WatDiv-like predicate vocabulary, with stable IDs.
WATDIV_PREDICATES: Dict[str, int] = {
    "type": 0,
    "friendOf": 1,
    "follows": 2,
    "likes": 3,
    "makesPurchase": 4,
    "purchaseFor": 5,
    "reviews": 6,
    "reviewOf": 7,
    "rating": 8,          # numeric
    "price": 9,           # numeric
    "age": 10,            # numeric
    "hasGenre": 11,
    "retailerOf": 12,
    "caption": 13,
    "title": 14,
    "homepage": 15,
}

#: Predicates whose objects are numeric literals.
WATDIV_NUMERIC_PREDICATES: Tuple[str, ...] = ("rating", "price", "age")

#: Class identifiers used as the objects of ``type`` statements.
WATDIV_CLASSES: Dict[str, int] = {
    "User": 0,
    "Product": 1,
    "Review": 2,
    "Retailer": 3,
    "Purchase": 4,
    "Genre": 5,
}


@dataclass
class WatDivDataset:
    """A generated WatDiv-like dataset plus its range-query support data."""

    store: TripleStore
    numeric_index: NumericIndex
    numeric_id_offset: int
    numeric_values_by_id: Dict[int, float]

    @property
    def num_triples(self) -> int:
        """Number of triples in the dataset."""
        return len(self.store)


class WatDivGenerator:
    """Generates a WatDiv-shaped dataset for a given scale factor."""

    def __init__(self, scale: int = 100, seed: int = 0):
        if scale <= 0:
            raise DatasetError("scale must be positive")
        self.scale = scale
        self.seed = seed

    def generate(self) -> WatDivDataset:
        """Generate the dataset.

        ``scale`` roughly corresponds to the number of users; products,
        reviews and purchases scale proportionally, as in the original suite.
        """
        rng = np.random.default_rng(self.seed)
        num_users = self.scale
        num_products = max(4, self.scale // 2)
        num_retailers = max(2, self.scale // 25)
        num_genres = max(2, min(24, self.scale // 10))

        triples: List[Tuple[int, int, int]] = []
        numeric_statements: List[Tuple[int, int, float]] = []  # (subject, predicate, value)

        # --- Resource ID allocation -------------------------------------- #
        # Subjects and objects share one resource ID space (class IDs first,
        # then entities and plain literals in order of first use), so that a
        # variable joining an object position to a subject position refers to
        # the same entity.  Numeric literals are appended afterwards in value
        # order so their IDs respect the value order.
        next_resource_id = len(WATDIV_CLASSES)
        resource_of_entity: Dict[Tuple[str, int], int] = {}

        def entity(kind: str, local_id: int) -> int:
            nonlocal next_resource_id
            key = (kind, local_id)
            existing = resource_of_entity.get(key)
            if existing is not None:
                return existing
            resource_of_entity[key] = next_resource_id
            next_resource_id += 1
            return next_resource_id - 1

        def literal_object() -> int:
            nonlocal next_resource_id
            next_resource_id += 1
            return next_resource_id - 1

        # Aliases keeping the generation code below readable.
        entity_subject = entity
        entity_object = entity

        P = WATDIV_PREDICATES
        C = WATDIV_CLASSES

        # Users.
        for user in range(num_users):
            s = entity_subject("user", user)
            triples.append((s, P["type"], C["User"]))
            numeric_statements.append((s, P["age"], float(int(rng.integers(18, 80)))))
            num_friends = int(rng.integers(0, 6))
            for friend in rng.integers(0, num_users, size=num_friends):
                triples.append((s, P["friendOf"], entity_object("user", int(friend))))
            num_follows = int(rng.integers(0, 4))
            for followed in rng.integers(0, num_users, size=num_follows):
                triples.append((s, P["follows"], entity_object("user", int(followed))))
            num_likes = int(rng.integers(0, 5))
            for product in rng.integers(0, num_products, size=num_likes):
                triples.append((s, P["likes"], entity_object("product", int(product))))

        # Products.
        for product in range(num_products):
            s = entity_subject("product", product)
            triples.append((s, P["type"], C["Product"]))
            triples.append((s, P["title"], literal_object()))
            triples.append((s, P["hasGenre"],
                            entity_object("genre", int(rng.integers(0, num_genres)))))
            numeric_statements.append((s, P["price"],
                                       round(float(rng.uniform(1.0, 500.0)), 2)))

        # Retailers.
        for retailer in range(num_retailers):
            s = entity_subject("retailer", retailer)
            triples.append((s, P["type"], C["Retailer"]))
            triples.append((s, P["homepage"], literal_object()))
            carried = rng.choice(num_products, size=min(num_products, 10), replace=False)
            for product in carried:
                triples.append((s, P["retailerOf"], entity_object("product", int(product))))

        # Reviews and purchases.
        num_reviews = num_users * 2
        for review in range(num_reviews):
            s = entity_subject("review", review)
            product = int(rng.integers(0, num_products))
            author = int(rng.integers(0, num_users))
            triples.append((s, P["type"], C["Review"]))
            triples.append((s, P["reviewOf"], entity_object("product", product)))
            triples.append((s, P["caption"], literal_object()))
            numeric_statements.append((s, P["rating"], float(int(rng.integers(1, 11)))))
            triples.append((entity_subject("user", author), P["reviews"],
                            entity_object("review", review)))

        num_purchases = num_users * 3
        for purchase in range(num_purchases):
            s = entity_subject("purchase", purchase)
            buyer = int(rng.integers(0, num_users))
            product = int(rng.integers(0, num_products))
            triples.append((s, P["type"], C["Purchase"]))
            triples.append((s, P["purchaseFor"], entity_object("product", product)))
            triples.append((entity_subject("user", buyer), P["makesPurchase"],
                            entity_object("purchase", purchase)))

        # --- Numeric literal objects: IDs in value order at the tail. --- #
        numeric_values = sorted({value for _, _, value in numeric_statements})
        numeric_id_offset = next_resource_id
        id_of_value = {value: numeric_id_offset + i for i, value in enumerate(numeric_values)}
        for subject, predicate, value in numeric_statements:
            triples.append((subject, predicate, id_of_value[value]))

        store = TripleStore.from_triples(triples)
        numeric_index = NumericIndex(numeric_values, scale=2)
        values_by_id = {identifier: value for value, identifier in id_of_value.items()}
        return WatDivDataset(store=store, numeric_index=numeric_index,
                             numeric_id_offset=numeric_id_offset,
                             numeric_values_by_id=values_by_id)


def generate_watdiv(scale: int = 100, seed: int = 0) -> WatDivDataset:
    """Convenience wrapper around :class:`WatDivGenerator`."""
    return WatDivGenerator(scale=scale, seed=seed).generate()
