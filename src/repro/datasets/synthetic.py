"""Profile-driven synthetic RDF generator.

The generator reproduces, at reduced scale, the statistics that drive every
result in the paper:

* the number of distinct predicates per subject (SPO level-1 fan-out, the key
  statistic behind the ``enumerate`` algorithm of Section 3.3),
* the number of objects per (subject, predicate) pair (SPO level-2 fan-out),
* a heavily skewed predicate-usage distribution (the "high associativity of
  predicates" the paper leans on),
* an object popularity distribution mixing a small hot set with a large
  cold pool, which controls the distinct-object ratio and the OSP fan-outs.

Generation is vectorised with numpy and deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.profiles import DatasetProfile, profile as lookup_profile
from repro.errors import DatasetError
from repro.rdf.triples import TripleStore


def _zipf_weights(size: int, exponent: float) -> np.ndarray:
    """Normalised Zipf-like weights over ``size`` ranks."""
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_from_profile(profile_or_name, num_triples: int, seed: int = 0) -> TripleStore:
    """Generate a dataset shaped like ``profile_or_name`` with about ``num_triples`` triples.

    ``profile_or_name`` is a :class:`repro.datasets.profiles.DatasetProfile` or
    the name of one of the paper's datasets (``"dbpedia"``, ``"dblp"``, ...).
    The returned store is deduplicated and densified, so the actual triple
    count is close to — but not exactly — the requested one, as with any
    statistical generator.
    """
    if isinstance(profile_or_name, str):
        source = lookup_profile(profile_or_name)
    else:
        source = profile_or_name
    if num_triples <= 0:
        raise DatasetError("num_triples must be positive")
    scaled = source.scaled(num_triples)
    rng = np.random.default_rng(seed)

    num_subjects = max(1, scaled.subjects)
    num_predicates = max(2, scaled.predicates)
    num_objects = max(2, scaled.objects)

    # --- SPO level 1: how many distinct predicates each subject uses. ------ #
    mean_preds_per_subject = max(1.0, scaled.sp_per_subject)
    predicates_per_subject = 1 + rng.poisson(mean_preds_per_subject - 1.0, size=num_subjects)
    predicates_per_subject = np.clip(predicates_per_subject, 1, num_predicates)

    subject_ids = np.repeat(np.arange(num_subjects), predicates_per_subject)
    predicate_weights = _zipf_weights(num_predicates, scaled.predicate_skew)
    predicate_ids = rng.choice(num_predicates, size=subject_ids.size, p=predicate_weights)

    # Deduplicate (subject, predicate) pairs: sampling with replacement makes
    # collisions possible for popular predicates.
    sp_pairs = np.unique(np.stack([subject_ids, predicate_ids], axis=1), axis=0)

    # --- SPO level 2: how many objects each (subject, predicate) pair has. - #
    mean_objects_per_pair = max(1.0, scaled.triples_per_sp)
    objects_per_pair = 1 + rng.poisson(mean_objects_per_pair - 1.0, size=sp_pairs.shape[0])

    triple_subjects = np.repeat(sp_pairs[:, 0], objects_per_pair)
    triple_predicates = np.repeat(sp_pairs[:, 1], objects_per_pair)
    total = triple_subjects.size

    # --- Objects: hot set + cold pool mixture. ----------------------------- #
    cold_fraction = float(np.clip(1.6 * num_objects / max(total, 1), 0.30, 0.95))
    hot_size = max(2, min(num_objects // 10, 4096))
    hot_weights = _zipf_weights(hot_size, scaled.object_skew)
    is_cold = rng.random(total) < cold_fraction
    objects = np.empty(total, dtype=np.int64)
    objects[is_cold] = rng.integers(0, num_objects, size=int(is_cold.sum()))
    objects[~is_cold] = rng.choice(hot_size, size=int((~is_cold).sum()), p=hot_weights)

    store = TripleStore.from_columns(triple_subjects, triple_predicates, objects)
    dense, _ = store.densified()
    return dense


def generate_uniform(num_triples: int, num_subjects: int, num_predicates: int,
                     num_objects: int, seed: int = 0) -> TripleStore:
    """Uniformly random triples (mostly useful for tests and micro-benchmarks)."""
    if min(num_triples, num_subjects, num_predicates, num_objects) <= 0:
        raise DatasetError("all generator parameters must be positive")
    rng = np.random.default_rng(seed)
    subjects = rng.integers(0, num_subjects, size=num_triples)
    predicates = rng.integers(0, num_predicates, size=num_triples)
    objects = rng.integers(0, num_objects, size=num_triples)
    store = TripleStore.from_columns(subjects, predicates, objects)
    dense, _ = store.densified()
    return dense
