"""LUBM-like synthetic dataset (Lehigh University Benchmark).

The original benchmark generates universities, departments, faculty, students,
courses and publications connected by 17 predicates.  This generator keeps the
same schema shape and degree characteristics (every student takes a handful of
courses, every faculty member teaches a couple, advisors are faculty of the
same department, ...), scaled by the number of universities, and produces
integer-ID triples directly.

Entity IDs are allocated densely in a single resource space shared by the
subject and object roles, so that SPARQL variables joining the two roles refer
to the same entity; class-object IDs equal the :data:`LUBM_CLASSES` constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.rdf.triples import TripleStore

#: The LUBM predicate vocabulary (17 predicates), with stable IDs.
LUBM_PREDICATES: Dict[str, int] = {
    "type": 0,
    "name": 1,
    "memberOf": 2,
    "subOrganizationOf": 3,
    "undergraduateDegreeFrom": 4,
    "mastersDegreeFrom": 5,
    "doctoralDegreeFrom": 6,
    "worksFor": 7,
    "teacherOf": 8,
    "takesCourse": 9,
    "advisor": 10,
    "publicationAuthor": 11,
    "headOf": 12,
    "researchInterest": 13,
    "emailAddress": 14,
    "telephone": 15,
    "teachingAssistantOf": 16,
}

#: Class identifiers used as the objects of ``type`` statements.
LUBM_CLASSES: Dict[str, int] = {
    "University": 0,
    "Department": 1,
    "FullProfessor": 2,
    "AssociateProfessor": 3,
    "AssistantProfessor": 4,
    "Lecturer": 5,
    "UndergraduateStudent": 6,
    "GraduateStudent": 7,
    "Course": 8,
    "GraduateCourse": 9,
    "ResearchGroup": 10,
    "Publication": 11,
}


@dataclass
class _IdAllocator:
    """Dense ID allocation for a role (subjects or objects)."""

    next_id: int = 0
    mapping: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def allocate(self, kind: str, local_id: int) -> int:
        """Return the dense ID for entity (kind, local_id), allocating if new."""
        key = (kind, local_id)
        existing = self.mapping.get(key)
        if existing is not None:
            return existing
        assigned = self.next_id
        self.mapping[key] = assigned
        self.next_id += 1
        return assigned


class LubmGenerator:
    """Generates a LUBM-shaped dataset for a given number of universities."""

    def __init__(self, num_universities: int = 4, seed: int = 0,
                 departments_per_university: int = 8,
                 students_per_department: int = 60,
                 faculty_per_department: int = 12,
                 courses_per_department: int = 18):
        if num_universities <= 0:
            raise DatasetError("num_universities must be positive")
        self.num_universities = num_universities
        self.seed = seed
        self.departments_per_university = departments_per_university
        self.students_per_department = students_per_department
        self.faculty_per_department = faculty_per_department
        self.courses_per_department = courses_per_department

    # ------------------------------------------------------------------ #
    # Generation.
    # ------------------------------------------------------------------ #

    def generate(self) -> TripleStore:
        """Generate the triple store."""
        rng = np.random.default_rng(self.seed)
        # Subjects and objects share one resource ID space so that variables
        # joining an object position to a subject position refer to the same
        # entity (class IDs are allocated first and match LUBM_CLASSES).
        resources = _IdAllocator()
        triples: List[Tuple[int, int, int]] = []
        entity_counter = 0

        def new_entity() -> int:
            nonlocal entity_counter
            entity_counter += 1
            return entity_counter

        def add(subject_key: Tuple[str, int], predicate: str, object_key: Tuple[str, int]):
            triples.append((
                resources.allocate(*subject_key),
                LUBM_PREDICATES[predicate],
                resources.allocate(*object_key),
            ))

        # Class objects are allocated first so that ``type`` objects are the
        # most associative ones, mirroring the real LUBM skew, and so that
        # their IDs equal the LUBM_CLASSES constants used by the query log.
        for class_name, class_id in LUBM_CLASSES.items():
            resources.allocate("class", class_id)

        for university in range(self.num_universities):
            uni = ("university", university)
            add(uni, "type", ("class", LUBM_CLASSES["University"]))
            add(uni, "name", ("literal", new_entity()))
            for _ in range(self.departments_per_university):
                dept_id = new_entity()
                dept = ("department", dept_id)
                add(dept, "type", ("class", LUBM_CLASSES["Department"]))
                add(dept, "subOrganizationOf", ("university", university))
                add(dept, "name", ("literal", new_entity()))

                # Courses of the department.
                course_ids = [new_entity() for _ in range(self.courses_per_department)]
                for i, course_id in enumerate(course_ids):
                    course = ("course", course_id)
                    class_name = "GraduateCourse" if i % 3 == 0 else "Course"
                    add(course, "type", ("class", LUBM_CLASSES[class_name]))
                    add(course, "name", ("literal", new_entity()))

                # Faculty.
                faculty_ids = [new_entity() for _ in range(self.faculty_per_department)]
                for i, faculty_id in enumerate(faculty_ids):
                    faculty = ("faculty", faculty_id)
                    rank = ("FullProfessor", "AssociateProfessor",
                            "AssistantProfessor", "Lecturer")[i % 4]
                    add(faculty, "type", ("class", LUBM_CLASSES[rank]))
                    add(faculty, "name", ("literal", new_entity()))
                    add(faculty, "emailAddress", ("literal", new_entity()))
                    add(faculty, "telephone", ("literal", new_entity()))
                    add(faculty, "worksFor", ("department", dept_id))
                    add(faculty, "undergraduateDegreeFrom",
                        ("university", int(rng.integers(0, self.num_universities))))
                    add(faculty, "mastersDegreeFrom",
                        ("university", int(rng.integers(0, self.num_universities))))
                    add(faculty, "doctoralDegreeFrom",
                        ("university", int(rng.integers(0, self.num_universities))))
                    add(faculty, "researchInterest", ("literal", new_entity()))
                    taught = rng.choice(len(course_ids),
                                        size=min(2, len(course_ids)), replace=False)
                    for course_index in taught:
                        add(faculty, "teacherOf", ("course", course_ids[int(course_index)]))
                    # A couple of publications per faculty member.
                    for _ in range(int(rng.integers(1, 4))):
                        publication_id = new_entity()
                        publication = ("publication", publication_id)
                        add(publication, "type", ("class", LUBM_CLASSES["Publication"]))
                        add(publication, "publicationAuthor", ("faculty", faculty_id))
                add(("faculty", faculty_ids[0]), "headOf", ("department", dept_id))

                # Students.
                for _ in range(self.students_per_department):
                    student_id = new_entity()
                    graduate = bool(rng.random() < 0.25)
                    student = ("student", student_id)
                    class_name = "GraduateStudent" if graduate else "UndergraduateStudent"
                    add(student, "type", ("class", LUBM_CLASSES[class_name]))
                    add(student, "name", ("literal", new_entity()))
                    add(student, "memberOf", ("department", dept_id))
                    num_courses = int(rng.integers(2, 5))
                    chosen = rng.choice(len(course_ids), size=min(num_courses, len(course_ids)),
                                        replace=False)
                    for course_index in chosen:
                        add(student, "takesCourse", ("course", course_ids[int(course_index)]))
                    if graduate:
                        advisor_index = int(rng.integers(0, len(faculty_ids)))
                        add(student, "advisor", ("faculty", faculty_ids[advisor_index]))
                        add(student, "undergraduateDegreeFrom",
                            ("university", int(rng.integers(0, self.num_universities))))
                        assisted = int(rng.integers(0, len(course_ids)))
                        add(student, "teachingAssistantOf",
                            ("course", course_ids[assisted]))

        # The store is *not* densified: subject and object IDs are allocated
        # densely during generation, and predicate/class IDs must stay equal to
        # the vocabulary constants so that the bundled query log resolves.
        return TripleStore.from_triples(triples)


def generate_lubm(num_universities: int = 4, seed: int = 0) -> TripleStore:
    """Convenience wrapper around :class:`LubmGenerator`."""
    return LubmGenerator(num_universities=num_universities, seed=seed).generate()
