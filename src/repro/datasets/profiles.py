"""Statistical profiles of the paper's datasets (Table 3).

A :class:`DatasetProfile` captures the statistics the paper reports for each
dataset plus the derived per-level fan-out averages (Table 2 relations), which
are what the synthetic generator reproduces at reduced scale:

* ``sp_per_subject``  = SP pairs / distinct subjects  (SPO level-1 fan-out)
* ``triples_per_sp``  = triples  / SP pairs           (SPO level-2 fan-out)
* ``triples_per_po``  = triples  / PO pairs           (POS level-2 fan-out)
* ``os_per_object``   = OS pairs / distinct objects   (OSP level-1 fan-out)
* ``triples_per_os``  = triples  / OS pairs           (OSP level-2 fan-out)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import DatasetError


@dataclass(frozen=True)
class DatasetProfile:
    """Table 3 statistics of one of the paper's datasets."""

    name: str
    triples: int
    subjects: int
    predicates: int
    objects: int
    sp_pairs: int
    po_pairs: int
    os_pairs: int
    #: Skew of the predicate usage distribution (Zipf-like exponent).
    predicate_skew: float = 1.1
    #: Skew of the popular-object distribution.
    object_skew: float = 1.05

    # ------------------------------------------------------------------ #
    # Derived fan-out statistics (Table 2 relations).
    # ------------------------------------------------------------------ #

    @property
    def sp_per_subject(self) -> float:
        """Average number of distinct predicates per subject (SPO level 1)."""
        return self.sp_pairs / self.subjects

    @property
    def triples_per_sp(self) -> float:
        """Average number of objects per (subject, predicate) pair (SPO level 2)."""
        return self.triples / self.sp_pairs

    @property
    def triples_per_po(self) -> float:
        """Average number of subjects per (predicate, object) pair (POS level 2)."""
        return self.triples / self.po_pairs

    @property
    def os_per_object(self) -> float:
        """Average number of distinct subjects per object (OSP level 1)."""
        return self.os_pairs / self.objects

    @property
    def triples_per_os(self) -> float:
        """Average number of predicates per (object, subject) pair (OSP level 2)."""
        return self.triples / self.os_pairs

    @property
    def subject_ratio(self) -> float:
        """Distinct subjects per triple."""
        return self.subjects / self.triples

    @property
    def object_ratio(self) -> float:
        """Distinct objects per triple."""
        return self.objects / self.triples

    def scaled(self, num_triples: int) -> "DatasetProfile":
        """Return a copy of the profile scaled to ``num_triples`` triples.

        Distinct-count statistics are scaled proportionally; the number of
        predicates is kept (capped by the triple count) because predicate
        vocabularies do not grow with dataset size.
        """
        if num_triples <= 0:
            raise DatasetError("num_triples must be positive")
        factor = num_triples / self.triples
        # Predicate vocabularies do not grow with dataset size, but keeping
        # the original count at reduced scale would destroy the
        # triples-per-predicate ratio (the "high associativity of predicates")
        # that drives the paper's compression results, so the count is capped
        # so that each predicate keeps on the order of a thousand triples.
        predicates = min(self.predicates, max(4, num_triples // 1000))
        return DatasetProfile(
            name=f"{self.name}-scaled-{num_triples}",
            triples=num_triples,
            subjects=max(1, int(self.subjects * factor)),
            predicates=predicates,
            objects=max(1, int(self.objects * factor)),
            sp_pairs=max(1, int(self.sp_pairs * factor)),
            po_pairs=max(1, int(self.po_pairs * factor)),
            os_pairs=max(1, int(self.os_pairs * factor)),
            predicate_skew=self.predicate_skew,
            object_skew=self.object_skew,
        )

    def as_table3_row(self) -> Dict[str, int]:
        """The profile as a Table 3 row."""
        return {
            "triples": self.triples,
            "subjects": self.subjects,
            "predicates": self.predicates,
            "objects": self.objects,
            "sp_pairs": self.sp_pairs,
            "po_pairs": self.po_pairs,
            "os_pairs": self.os_pairs,
        }


#: The six datasets of the paper's Table 3, with their published statistics.
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "dblp": DatasetProfile(
        name="dblp", triples=88_150_324, subjects=5_125_936, predicates=27,
        objects=36_413_780, sp_pairs=58_476_283, po_pairs=46_468_249,
        os_pairs=70_234_083),
    "geonames": DatasetProfile(
        name="geonames", triples=123_020_821, subjects=8_345_450, predicates=26,
        objects=42_728_317, sp_pairs=118_410_418, po_pairs=45_096_877,
        os_pairs=112_961_698),
    "dbpedia": DatasetProfile(
        name="dbpedia", triples=351_592_624, subjects=27_318_781, predicates=1_480,
        objects=115_872_941, sp_pairs=151_464_424, po_pairs=135_673_814,
        os_pairs=311_567_728),
    "watdiv": DatasetProfile(
        name="watdiv", triples=1_092_155_948, subjects=52_120_385, predicates=86,
        objects=92_220_397, sp_pairs=230_085_646, po_pairs=111_561_465,
        os_pairs=1_092_137_931),
    "lubm": DatasetProfile(
        name="lubm", triples=1_334_681_190, subjects=217_006_852, predicates=17,
        objects=161_413_040, sp_pairs=1_060_824_925, po_pairs=195_085_216,
        os_pairs=1_334_459_593),
    "freebase": DatasetProfile(
        name="freebase", triples=2_067_068_154, subjects=102_001_451, predicates=770_415,
        objects=438_832_462, sp_pairs=878_472_435, po_pairs=722_280_094,
        os_pairs=1_765_877_943),
}


def profile(name: str) -> DatasetProfile:
    """Look up a dataset profile by (case-insensitive) name."""
    try:
        return DATASET_PROFILES[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset profile {name!r}; available: {sorted(DATASET_PROFILES)}"
        ) from None
