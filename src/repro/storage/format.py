"""Tagged binary encoding of the object-state trees the serializers produce.

The persistence layer (see :mod:`repro.storage.codecs`) describes every codec,
trie and index as a *state tree*: nested dicts and lists whose leaves are
``None``, bools, ints, floats, strings, bytes or 1-D numpy arrays, plus nested
serialisable objects.  This module encodes such a tree into a compact,
self-describing byte string and decodes it back, with explicit bounds checks so
that a truncated or corrupted payload raises :class:`repro.errors.StorageError`
instead of crashing in numpy or struct internals.

Every value starts with a one-byte tag.  Variable-length quantities (string
and bytes lengths, collection sizes) use unsigned LEB128; integers use the
zigzag transform on top of it so that the occasional negative value (e.g. the
``NOT_FOUND`` sentinel) costs one byte instead of ten.  Arrays store their
dtype in numpy's ``dtype.str`` notation followed by the raw little-endian
buffer, which lets the decoder hand the words straight back to the rank/select
structures without re-deriving anything.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.errors import StorageError

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08
_TAG_ARRAY = 0x09
_TAG_OBJECT = 0x0A

#: ``object_encoder`` maps a rich object to ``(type_name, state_dict)``.
ObjectEncoder = Callable[[Any], Tuple[str, dict]]
#: ``object_decoder`` rebuilds a rich object from ``(type_name, state_dict)``.
ObjectDecoder = Callable[[str, dict], Any]

#: dtypes accepted for array payloads; anything else is a serialiser bug.
_ALLOWED_DTYPES = frozenset({"<u8", "<i8", "<u4", "<i4", "<u2", "<i2",
                             "|u1", "|i1", "<f8", "<f4"})


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise StorageError(f"cannot encode negative varint {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class _Writer:
    """Encodes one state tree into a bytearray."""

    def __init__(self, object_encoder: Optional[ObjectEncoder]):
        self._out = bytearray()
        self._object_encoder = object_encoder

    def getvalue(self) -> bytes:
        return bytes(self._out)

    def write(self, value: Any) -> None:
        out = self._out
        if value is None:
            out.append(_TAG_NONE)
        elif value is False:
            out.append(_TAG_FALSE)
        elif value is True:
            out.append(_TAG_TRUE)
        elif isinstance(value, (int, np.integer)):
            out.append(_TAG_INT)
            _write_uvarint(out, _zigzag(int(value)))
        elif isinstance(value, (float, np.floating)):
            out.append(_TAG_FLOAT)
            out.extend(struct.pack("<d", float(value)))
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            out.append(_TAG_STR)
            _write_uvarint(out, len(encoded))
            out.extend(encoded)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            data = bytes(value)
            out.append(_TAG_BYTES)
            _write_uvarint(out, len(data))
            out.extend(data)
        elif isinstance(value, np.ndarray):
            self._write_array(value)
        elif isinstance(value, (list, tuple)):
            out.append(_TAG_LIST)
            _write_uvarint(out, len(value))
            for item in value:
                self.write(item)
        elif isinstance(value, dict):
            out.append(_TAG_DICT)
            _write_uvarint(out, len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise StorageError(f"dict keys must be strings, got {key!r}")
                encoded = key.encode("utf-8")
                _write_uvarint(out, len(encoded))
                out.extend(encoded)
                self.write(item)
        else:
            self._write_object(value)

    def _write_array(self, array: np.ndarray) -> None:
        if array.ndim != 1:
            raise StorageError(f"only 1-D arrays are storable, got shape {array.shape}")
        contiguous = np.ascontiguousarray(array)
        # dtype.str spells out the concrete byte order ('>u8') even when
        # dtype.byteorder reports native ('='), so this also catches native
        # arrays on big-endian hosts.
        if contiguous.dtype.str.startswith(">"):
            contiguous = contiguous.astype(contiguous.dtype.newbyteorder("<"))
        dtype_code = contiguous.dtype.str
        if dtype_code not in _ALLOWED_DTYPES:
            raise StorageError(f"unsupported array dtype {dtype_code!r}")
        encoded_dtype = dtype_code.encode("ascii")
        out = self._out
        out.append(_TAG_ARRAY)
        _write_uvarint(out, len(encoded_dtype))
        out.extend(encoded_dtype)
        _write_uvarint(out, contiguous.size)
        out.extend(contiguous.tobytes())

    def _write_object(self, value: Any) -> None:
        if self._object_encoder is None:
            raise StorageError(f"cannot encode object of type {type(value).__name__}")
        type_name, state = self._object_encoder(value)
        if not isinstance(state, dict):
            raise StorageError(f"serializer for {type_name!r} returned a non-dict state")
        encoded = type_name.encode("utf-8")
        self._out.append(_TAG_OBJECT)
        _write_uvarint(self._out, len(encoded))
        self._out.extend(encoded)
        self.write(state)


class _Reader:
    """Decodes one state tree with explicit bounds checks.

    ``data`` may be any buffer (bytes, or a memoryview over an mmap).  With
    ``zero_copy=True`` decoded arrays are read-only views into that buffer —
    nothing is copied, so decoding an mmap-backed payload touches only the
    pages holding tags and lengths, not the array bodies.  The views keep the
    underlying buffer alive through numpy's ``base`` chain.
    """

    def __init__(self, data, object_decoder: Optional[ObjectDecoder],
                 zero_copy: bool = False):
        self._data = memoryview(data)
        self._offset = 0
        self._object_decoder = object_decoder
        self._zero_copy = zero_copy

    def _take(self, count: int) -> memoryview:
        end = self._offset + count
        if count < 0 or end > len(self._data):
            raise StorageError("truncated payload while decoding")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def _read_uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self._take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 70:
                raise StorageError("malformed varint (too many continuation bytes)")

    def at_end(self) -> bool:
        return self._offset == len(self._data)

    def read(self) -> Any:
        tag = self._take(1)[0]
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_INT:
            return _unzigzag(self._read_uvarint())
        if tag == _TAG_FLOAT:
            return struct.unpack("<d", self._take(8))[0]
        if tag == _TAG_STR:
            return self._decode_text(self._take(self._read_uvarint()))
        if tag == _TAG_BYTES:
            return bytes(self._take(self._read_uvarint()))
        if tag == _TAG_LIST:
            count = self._read_uvarint()
            return [self.read() for _ in range(count)]
        if tag == _TAG_DICT:
            count = self._read_uvarint()
            result = {}
            for _ in range(count):
                key = self._decode_text(self._take(self._read_uvarint()))
                result[key] = self.read()
            return result
        if tag == _TAG_ARRAY:
            return self._read_array()
        if tag == _TAG_OBJECT:
            return self._read_object()
        raise StorageError(f"unknown value tag 0x{tag:02x}")

    @staticmethod
    def _decode_text(data) -> str:
        try:
            return bytes(data).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StorageError(f"malformed UTF-8 in payload: {exc}") from None

    def _read_array(self) -> np.ndarray:
        dtype_code = bytes(self._take(self._read_uvarint())).decode("ascii", "replace")
        if dtype_code not in _ALLOWED_DTYPES:
            raise StorageError(f"unsupported array dtype {dtype_code!r} in payload")
        dtype = np.dtype(dtype_code)
        size = self._read_uvarint()
        raw = self._take(size * dtype.itemsize)
        if self._zero_copy:
            # A read-only view straight over the source buffer: no bytes
            # move, no pages fault in.  Every consumer treats stored words
            # as immutable, so read-only is the honest dtype of the data.
            return np.frombuffer(raw, dtype=dtype)
        # .copy() yields an aligned, writable array owning its buffer.
        return np.frombuffer(raw, dtype=dtype).copy()

    def _read_object(self) -> Any:
        type_name = self._decode_text(self._take(self._read_uvarint()))
        state = self.read()
        if not isinstance(state, dict):
            raise StorageError(f"object {type_name!r} carries a non-dict state")
        if self._object_decoder is None:
            raise StorageError(f"no object decoder available for {type_name!r}")
        return self._object_decoder(type_name, state)


def dumps(value: Any, object_encoder: Optional[ObjectEncoder] = None) -> bytes:
    """Encode a state tree into bytes."""
    writer = _Writer(object_encoder)
    writer.write(value)
    return writer.getvalue()


def loads(data, object_decoder: Optional[ObjectDecoder] = None,
          zero_copy: bool = False) -> Any:
    """Decode bytes produced by :func:`dumps` back into a state tree.

    ``data`` may be bytes or any read-only buffer (e.g. a memoryview over a
    mapped container section).  With ``zero_copy=True`` array leaves are
    read-only views into ``data`` instead of owned copies — the caller must
    then keep ``data``'s backing storage valid for the arrays' lifetime
    (numpy's ``base`` chain does this automatically for mmap-backed views).
    """
    reader = _Reader(data, object_decoder, zero_copy=zero_copy)
    value = reader.read()
    if not reader.at_end():
        raise StorageError("trailing garbage after payload")
    return value
