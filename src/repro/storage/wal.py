"""Write-ahead log for the dynamic update subsystem.

The compressed indexes are immutable; updates live in an in-memory delta
(:mod:`repro.dynamic.delta`) until a compaction folds them into a fresh
index.  Memory alone would lose acknowledged writes on a crash, so every
mutation batch is appended here *before* it becomes visible, and replayed
on reopen — the classic write-ahead contract.

On-disk layout::

    +--------------------------------------------------+
    | magic "REPROWAL" (8 bytes) + version (uint32 LE) |
    | record*                                          |
    +--------------------------------------------------+

    record := payload length (uint32 LE)
              payload CRC-32 (uint32 LE)
              payload

    payload := insert count (uint32 LE)
               delete count (uint32 LE)
               inserts then deletes, each (s, p, o) as int64 LE

A record carries one whole mutation batch — inserts *and* deletes
together — so batch atomicity survives a crash: either the entire batch
is durable or none of it is (a half-written record fails its CRC and is
discarded).  Appends are flushed and ``fsync``-ed before the call returns
(unless ``sync=False``), so a record either made it to stable storage
entirely or the crash happened before the write was acknowledged.  Replay
validates each record's CRC and stops at the first short or corrupt
record — a torn tail from a mid-write crash is never misread — and the
file is truncated back to its last valid record so later appends continue
from a clean end.  The byte-level framing is specified in
``docs/STORAGE_FORMAT.md`` alongside the container format.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import StorageError

PathLike = Union[str, Path]
Triple = Tuple[int, int, int]
#: What :meth:`WriteAheadLog.replay` yields: one ``(inserts, deletes)`` batch.
Batch = Tuple[List[Triple], List[Triple]]

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<8sI")
_RECORD_HEADER = struct.Struct("<II")
_PAYLOAD_HEADER = struct.Struct("<II")
_TRIPLE = struct.Struct("<qqq")

#: Per-record ceiling; a batch larger than this must be split by the caller
#: (the service layer batches far below it).  Guards replay against reading
#: a corrupted length field as a multi-gigabyte allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class WriteAheadLog:
    """An append-only, checksummed log of atomic mutation batches.

    Opening an existing log validates the header and scans the records once
    for :meth:`replay`; a torn tail is truncated away.  Opening a missing
    or empty file writes a fresh header.
    """

    def __init__(self, path: PathLike, sync: bool = True):
        self._path = Path(path)
        self._sync = sync
        #: Batches found at open time, in append order (what replay yields).
        #: Appends after open only bump ``_num_records`` — retaining every
        #: live-appended batch would grow memory with the whole history.
        self._records: List[Batch] = []
        existing = b""
        if self._path.exists():
            try:
                existing = self._path.read_bytes()
            except OSError as exc:
                raise StorageError(f"cannot read WAL {path}: {exc}") from None
        if 0 < len(existing) < _HEADER.size:
            # Torn header: the process died between creating the file and
            # completing the 12-byte header, so no record was ever durable.
            # Heal it like a torn tail instead of refusing to start.  (A
            # full-size header with a bad magic still errors — that may be
            # somebody else's file.)
            existing = b""
        if existing:
            valid_end = self._scan(existing)
        else:
            valid_end = 0
        self._num_records = len(self._records)
        try:
            self._handle = open(self._path, "r+b" if existing else "w+b")
            if existing:
                self._handle.truncate(valid_end)
                self._handle.seek(valid_end)
            else:
                self._handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION))
                self._flush()
                # Make the *name* durable too: per-record fsyncs are
                # worthless if a power loss can drop the whole freshly
                # created file from its directory.
                from repro.storage.container import fsync_directory
                fsync_directory(self._path.parent)
        except OSError as exc:
            raise StorageError(f"cannot open WAL {path}: {exc}") from None

    # ------------------------------------------------------------------ #
    # Reading.
    # ------------------------------------------------------------------ #

    def _scan(self, data: bytes) -> int:
        """Parse ``data``, fill ``self._records``, return the valid end offset."""
        if len(data) < _HEADER.size:
            raise StorageError(f"{self._path}: too short to be a repro WAL")
        magic, version = _HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise StorageError(f"{self._path}: not a repro WAL (bad magic)")
        if version != WAL_VERSION:
            raise StorageError(
                f"{self._path}: unsupported WAL version {version} "
                f"(this build reads version {WAL_VERSION})")
        cursor = _HEADER.size
        while True:
            if cursor + _RECORD_HEADER.size > len(data):
                break  # torn tail: record header incomplete
            length, crc = _RECORD_HEADER.unpack_from(data, cursor)
            if length > MAX_RECORD_BYTES:
                break  # corrupt length field
            start = cursor + _RECORD_HEADER.size
            if start + length > len(data):
                break  # torn tail: payload incomplete
            payload = data[start:start + length]
            if _crc32(payload) != crc:
                break  # corrupt payload
            record = self._decode_payload(payload)
            if record is None:
                break
            self._records.append(record)
            cursor = start + length
        return cursor

    @staticmethod
    def _decode_payload(payload: bytes):
        if len(payload) < _PAYLOAD_HEADER.size:
            return None
        num_inserts, num_deletes = _PAYLOAD_HEADER.unpack_from(payload, 0)
        expected = (_PAYLOAD_HEADER.size
                    + (num_inserts + num_deletes) * _TRIPLE.size)
        if len(payload) != expected:
            return None
        triples = [_TRIPLE.unpack_from(payload, _PAYLOAD_HEADER.size
                                       + i * _TRIPLE.size)
                   for i in range(num_inserts + num_deletes)]
        return triples[:num_inserts], triples[num_inserts:]

    def replay(self) -> Iterator[Batch]:
        """Yield every batch that was durable *at open time*, in order.

        Batches appended through this handle after open are not re-yielded
        (the caller already applied them); reopen the log to see everything.
        Call :meth:`release_replay` once the history has been applied —
        otherwise a handle over a large log pins the whole decoded history
        in memory for its lifetime.
        """
        yield from self._records

    def release_replay(self) -> None:
        """Free the open-time replay buffer (the on-disk log is untouched)."""
        self._records = []

    # ------------------------------------------------------------------ #
    # Writing.
    # ------------------------------------------------------------------ #

    def _open_handle(self):
        if self._handle is None:
            raise StorageError(f"WAL {self._path} is closed")
        return self._handle

    def _flush(self) -> None:
        self._handle.flush()
        if self._sync:
            os.fsync(self._handle.fileno())

    def append(self, inserts: Sequence[Triple] = (),
               deletes: Sequence[Triple] = ()) -> int:
        """Durably append one mutation batch; returns the record's byte size.

        When this returns, the whole batch — inserts and deletes together —
        has been flushed (and, unless the log was opened with
        ``sync=False``, fsync-ed): a subsequent crash either keeps all of
        it or none of it.
        """
        payload = bytearray(_PAYLOAD_HEADER.pack(len(inserts), len(deletes)))
        for s, p, o in inserts:
            payload += _TRIPLE.pack(s, p, o)
        for s, p, o in deletes:
            payload += _TRIPLE.pack(s, p, o)
        if len(payload) > MAX_RECORD_BYTES:
            raise StorageError(
                f"WAL batch of {len(inserts) + len(deletes)} triples exceeds "
                f"the {MAX_RECORD_BYTES} byte record limit; split the batch")
        record = _RECORD_HEADER.pack(len(payload), _crc32(bytes(payload)))
        record += bytes(payload)
        handle = self._open_handle()
        handle.seek(0, os.SEEK_END)
        start = handle.tell()
        try:
            handle.write(record)
            self._flush()
        except OSError as exc:
            # Roll the file back to the record boundary: leaving torn bytes
            # mid-log would make replay stop there and silently drop every
            # later (acknowledged) record appended after them.
            try:
                handle.truncate(start)
                handle.seek(start)
            except OSError:  # pragma: no cover - double-fault path
                pass
            raise StorageError(
                f"cannot append to WAL {self._path}: {exc}") from None
        self._num_records += 1
        return len(record)

    def reset(self) -> None:
        """Drop every record (called once a save absorbed the history)."""
        handle = self._open_handle()
        handle.truncate(_HEADER.size)
        handle.seek(_HEADER.size)
        self._flush()
        self._records.clear()
        self._num_records = 0

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle.
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_records(self) -> int:
        return self._num_records

    def size_bytes(self) -> int:
        """Current on-disk size of the log (stat-based once closed, so a
        stats probe racing shutdown degrades gracefully)."""
        if self._handle is None:
            try:
                return self._path.stat().st_size
            except OSError:
                return 0
        self._handle.seek(0, os.SEEK_END)
        return self._handle.tell()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class WalReader:
    """A read-only incremental follower over a (possibly live) WAL file.

    Unlike :class:`WriteAheadLog`, opening a reader never truncates a torn
    tail — the file may be mid-append by another process, so an incomplete
    record simply means "stop here and try again later".  This is the
    publication bus of the pre-fork serving pool: the single writer process
    appends batches, and every worker replays the tail it has not applied
    yet through :meth:`read`.

    A reader is lazy and stateless on disk: it remembers only the byte
    offset of the next unread record.  If the log shrinks underneath it
    (the writer's :meth:`WriteAheadLog.reset` after a persisted
    compaction), :meth:`read` rewinds to the header and starts over —
    callers that re-base onto the compacted container call :meth:`rewind`
    explicitly instead.
    """

    def __init__(self, path: PathLike):
        self._path = Path(path)
        #: Byte offset of the next unread record; 0 = header not yet seen.
        self._offset = 0
        self._records_read = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def records_read(self) -> int:
        """How many complete batches :meth:`read` has returned so far."""
        return self._records_read

    def rewind(self) -> None:
        """Forget all progress; the next :meth:`read` starts at record 0."""
        self._offset = 0
        self._records_read = 0

    def read(self, limit: Optional[int] = None) -> List[Batch]:
        """Return the complete batches appended since the last call.

        Stops early at a torn tail (a record the writer has not finished
        flushing) or at ``limit`` batches; both cases simply leave the
        offset where it is for the next call.  A missing or header-less
        file yields ``[]`` — the writer may not have created it yet.
        """
        try:
            handle = open(self._path, "rb")
        except OSError:
            return []
        with handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size < self._offset:
                # The log shrank (writer reset after compaction): start over.
                self.rewind()
            if self._offset == 0:
                if size < _HEADER.size:
                    return []
                handle.seek(0)
                magic, version = _HEADER.unpack(handle.read(_HEADER.size))
                if magic != WAL_MAGIC:
                    raise StorageError(
                        f"{self._path}: not a repro WAL (bad magic)")
                if version != WAL_VERSION:
                    raise StorageError(
                        f"{self._path}: unsupported WAL version {version} "
                        f"(this build reads version {WAL_VERSION})")
                self._offset = _HEADER.size
            handle.seek(self._offset)
            data = handle.read()
        batches: List[Batch] = []
        cursor = 0
        while limit is None or len(batches) < limit:
            if cursor + _RECORD_HEADER.size > len(data):
                break
            length, crc = _RECORD_HEADER.unpack_from(data, cursor)
            if length > MAX_RECORD_BYTES:
                break  # corrupt length field; the writer heals on reopen
            start = cursor + _RECORD_HEADER.size
            if start + length > len(data):
                break  # torn tail: the writer is still flushing this record
            payload = data[start:start + length]
            if _crc32(payload) != crc:
                break
            record = WriteAheadLog._decode_payload(payload)
            if record is None:
                break
            batches.append(record)
            cursor = start + length
        self._offset += cursor
        self._records_read += len(batches)
        return batches
