"""The on-disk container: magic, format version, section table, checksums.

A repro index file is a flat container of named byte sections::

    +--------------------------------------------------------------+
    | magic "REPROIDX" (8 bytes)                                   |
    | format version   (uint32 LE)                                 |
    | number of sections (uint32 LE)                               |
    | section table: per section                                   |
    |     name length (uint16 LE) + UTF-8 name                     |
    |     payload offset (uint64 LE, absolute)                     |
    |     payload length (uint64 LE)                               |
    |     payload CRC-32 (uint32 LE)                               |
    | header CRC-32    (uint32 LE, over everything above)          |
    | section payloads, back to back                               |
    +--------------------------------------------------------------+

The header checksum catches table corruption before any offset is trusted;
per-section CRC-32s catch payload corruption before any byte reaches the
decoders.  Every failure mode raises :class:`repro.errors.StorageError` with a
message naming what was violated, so callers (CLI included) can report the
problem without a traceback.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import StorageError

MAGIC = b"REPROIDX"

#: Default version of the container format written by this build.  Readers
#: reject files with any unsupported version, which is what makes future
#: layout changes safe: bump the version and old builds fail loudly instead
#: of misreading.
FORMAT_VERSION = 1

#: Version written when the file carries a dynamic-update ``delta`` section
#: (inserted triples + tombstones awaiting compaction).  Builds that predate
#: the dynamic subsystem would silently *drop* such a delta, so those files
#: advertise a version old readers refuse.
DELTA_FORMAT_VERSION = 2

#: Version written by aligned (mmap-friendly) saves: every section payload
#: starts on a :data:`SECTION_ALIGNMENT`-byte boundary, with zero padding
#: between payloads.  Supersedes version 2 (it also admits a ``delta``
#: section); the alignment is what lets :func:`map_container` hand the
#: decoders page-backed views that numpy can address without copying.
ALIGNED_FORMAT_VERSION = 3

#: Every version this build can read.
SUPPORTED_VERSIONS = (FORMAT_VERSION, DELTA_FORMAT_VERSION,
                      ALIGNED_FORMAT_VERSION)

#: Alignment (bytes) of section payloads in version-3 containers: a cache
#: line, and a multiple of every array itemsize the format allows.
SECTION_ALIGNMENT = 64

_FIXED_HEADER = struct.Struct("<8sII")
_TABLE_ENTRY_TAIL = struct.Struct("<QQI")
_CRC = struct.Struct("<I")

PathLike = Union[str, Path]


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory entry to stable storage (best-effort off-Linux).

    Needed after creating or renaming a file whose durability matters: the
    file's own fsync persists its *contents*, but until the directory is
    synced the *name* can vanish on power loss.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # platform without directory fds (e.g. Windows)
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_container(path: PathLike, sections: Mapping[str, bytes],
                    version: Optional[int] = None) -> int:
    """Write ``sections`` to ``path``; returns the total number of bytes written.

    The write is atomic: bytes go to a temporary file in the destination
    directory which is renamed over ``path`` only once fully written, so an
    interrupted save (disk full, crash, Ctrl-C) never destroys a previously
    valid index file.  Section order is preserved, so a round trip through
    :func:`read_container` keeps files byte-identical.  ``version`` is the
    advertised format version (:data:`DELTA_FORMAT_VERSION` for files
    carrying a delta section).
    """
    if not sections:
        raise StorageError("a container needs at least one section")
    if version is None:
        version = FORMAT_VERSION
    aligned = version >= ALIGNED_FORMAT_VERSION
    encoded_names: List[Tuple[bytes, bytes]] = []
    for name, payload in sections.items():
        encoded = name.encode("utf-8")
        if not encoded or len(encoded) > 0xFFFF:
            raise StorageError(f"invalid section name {name!r}")
        encoded_names.append((encoded, payload))

    table_size = sum(2 + len(encoded) + _TABLE_ENTRY_TAIL.size
                     for encoded, _ in encoded_names)
    payload_start = _FIXED_HEADER.size + table_size + _CRC.size

    def _align(position: int) -> int:
        if not aligned:
            return position
        remainder = position % SECTION_ALIGNMENT
        return position if remainder == 0 else position + SECTION_ALIGNMENT - remainder

    header = bytearray()
    header += _FIXED_HEADER.pack(MAGIC, version, len(encoded_names))
    offset = _align(payload_start)
    offsets: List[int] = []
    for encoded, payload in encoded_names:
        header += struct.pack("<H", len(encoded))
        header += encoded
        header += _TABLE_ENTRY_TAIL.pack(offset, len(payload), _crc32(payload))
        offsets.append(offset)
        offset = _align(offset + len(payload))

    destination = Path(path)
    temporary = destination.with_name(destination.name + ".tmp")
    try:
        with open(temporary, "wb") as handle:
            handle.write(header)
            handle.write(_CRC.pack(_crc32(bytes(header))))
            position = payload_start
            for (_, payload), aligned_offset in zip(encoded_names, offsets):
                if aligned_offset > position:
                    handle.write(b"\x00" * (aligned_offset - position))
                handle.write(payload)
                position = aligned_offset + len(payload)
            # Contents must be durable *before* the rename makes them the
            # live file — otherwise a power loss can leave the destination
            # pointing at unwritten pages.  The directory sync after the
            # rename makes the new name itself durable; callers that
            # truncate a WAL on the strength of this write depend on both.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, destination)
        fsync_directory(destination.parent)
    except OSError:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise
    return position


def read_container(path: PathLike) -> Dict[str, bytes]:
    """Read and fully validate a container; returns sections by name."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from None
    return parse_container(data, source=str(path))


def container_version(data: bytes, source: str = "<bytes>") -> int:
    """The format version stamped in a container image's fixed header.

    This is the *stored* version (what the writing build advertised), which
    is what operators need to see — :data:`FORMAT_VERSION` is merely what
    this build writes by default.
    """
    if len(data) < _FIXED_HEADER.size:
        raise StorageError(f"{source}: too short to be a repro container")
    magic, version, _ = _FIXED_HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise StorageError(f"{source}: not a repro container (bad magic)")
    return int(version)


def _parse_header(data, source: str) -> Tuple[int, List[Tuple[str, int, int, int]]]:
    """Validate magic, version, section table and header CRC.

    Returns ``(version, table)`` with ``table`` entries of
    ``(name, offset, length, payload_crc)``.  Accepts any buffer supporting
    the buffer protocol (bytes or an mmap), and never touches payload bytes —
    which is what keeps :func:`map_container` O(header size).
    """
    if len(data) < _FIXED_HEADER.size + _CRC.size:
        raise StorageError(f"{source}: too short to be a repro container")
    magic, version, num_sections = _FIXED_HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise StorageError(f"{source}: not a repro container (bad magic)")
    if version not in SUPPORTED_VERSIONS:
        raise StorageError(
            f"{source}: unsupported container format version {version} "
            f"(this build reads versions {SUPPORTED_VERSIONS})")

    cursor = _FIXED_HEADER.size
    table: List[Tuple[str, int, int, int]] = []
    for _ in range(num_sections):
        if cursor + 2 > len(data):
            raise StorageError(f"{source}: truncated section table")
        (name_length,) = struct.unpack_from("<H", data, cursor)
        cursor += 2
        if cursor + name_length + _TABLE_ENTRY_TAIL.size > len(data):
            raise StorageError(f"{source}: truncated section table")
        try:
            name = bytes(data[cursor:cursor + name_length]).decode("utf-8")
        except UnicodeDecodeError:
            raise StorageError(f"{source}: malformed section name") from None
        cursor += name_length
        offset, length, crc = _TABLE_ENTRY_TAIL.unpack_from(data, cursor)
        cursor += _TABLE_ENTRY_TAIL.size
        table.append((name, offset, length, crc))

    if cursor + _CRC.size > len(data):
        raise StorageError(f"{source}: truncated header checksum")
    (header_crc,) = _CRC.unpack_from(data, cursor)
    if header_crc != _crc32(bytes(data[:cursor])):
        raise StorageError(f"{source}: header checksum mismatch (corrupted file)")
    return int(version), table


def parse_container(data: bytes, source: str = "<bytes>") -> Dict[str, bytes]:
    """Validate an in-memory container image and return its sections."""
    _version, table = _parse_header(data, source)

    sections: Dict[str, bytes] = {}
    for name, offset, length, crc in table:
        if offset + length > len(data):
            raise StorageError(f"{source}: section {name!r} extends past end of file")
        payload = data[offset:offset + length]
        if _crc32(payload) != crc:
            raise StorageError(f"{source}: section {name!r} checksum mismatch "
                               f"(corrupted file)")
        if name in sections:
            raise StorageError(f"{source}: duplicate section {name!r}")
        sections[name] = payload
    return sections


def verify_container(path: PathLike) -> Dict[str, object]:
    """Audit a container file; returns a structured integrity report.

    Stricter than :func:`read_container` — beyond the header CRC and the
    per-section payload CRC-32s it also audits the section *table* itself:
    payloads must lie after the header, in table order, without overlap,
    and (for version-3 files) each payload must start on a
    :data:`SECTION_ALIGNMENT`-byte boundary.  Structural failures (bad
    magic, truncated table, header CRC) raise :class:`StorageError` as
    usual; payload-level problems are *reported*, one entry per section,
    so operators see every damaged section in one pass instead of the
    first one per invocation.
    """
    source = str(path)
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {source}: {exc}") from None
    version, table = _parse_header(data, source)
    aligned = version >= ALIGNED_FORMAT_VERSION

    header_end = (_FIXED_HEADER.size
                  + sum(2 + len(name.encode("utf-8")) + _TABLE_ENTRY_TAIL.size
                        for name, _, _, _ in table)
                  + _CRC.size)
    sections: List[Dict[str, object]] = []
    problems: List[str] = []
    seen: Dict[str, int] = {}
    previous_end = header_end
    for name, offset, length, crc in table:
        entry: Dict[str, object] = {"name": name, "offset": offset,
                                    "length": length}
        errors: List[str] = []
        if name in seen:
            errors.append("duplicate section name")
        seen[name] = offset
        if offset < header_end:
            errors.append("payload overlaps the header")
        if offset < previous_end:
            errors.append("payload overlaps the previous section")
        if aligned and offset % SECTION_ALIGNMENT:
            errors.append(f"payload not {SECTION_ALIGNMENT}-byte aligned")
        if offset + length > len(data):
            errors.append("payload extends past end of file")
            entry["crc_ok"] = False
        else:
            entry["crc_ok"] = _crc32(data[offset:offset + length]) == crc
            if not entry["crc_ok"]:
                errors.append("payload checksum mismatch")
            previous_end = max(previous_end, offset + length)
        entry["errors"] = errors
        problems.extend(f"section {name!r}: {error}" for error in errors)
        sections.append(entry)

    return {
        "path": source,
        "format_version": version,
        "aligned": aligned,
        "total_bytes": len(data),
        "num_sections": len(table),
        "sections": sections,
        "problems": problems,
        "ok": not problems,
    }


class MappedContainer:
    """A container whose section payloads are views over one shared mmap.

    Produced by :func:`map_container`.  ``sections`` maps names to read-only
    :class:`memoryview` objects backed by the page cache — no payload byte is
    read (or checksummed) until something dereferences it.  Consumers that
    build numpy arrays over the views keep the mapping alive through the
    buffer protocol, so the container object itself may be dropped freely;
    :meth:`close` is best-effort and refuses nothing.
    """

    def __init__(self, path: str, version: int,
                 sections: Dict[str, memoryview], mapping) -> None:
        self.path = path
        self.version = version
        self.sections = sections
        self._mmap = mapping

    def close(self) -> None:
        """Release the mapping if no exported view pins it."""
        for view in self.sections.values():
            view.release()
        self.sections = {}
        try:
            self._mmap.close()
        except (BufferError, ValueError):
            pass  # arrays still reference pages; the OS reclaims on exit

    def __enter__(self) -> "MappedContainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def map_container(path: PathLike) -> MappedContainer:
    """Memory-map a container and return lazily-read section views.

    Unlike :func:`read_container` this is O(header): the magic, version,
    section table and header CRC are validated — so every offset is trusted
    and in bounds — but the per-section payload CRCs are **not** verified
    (doing so would fault in every page, defeating the point of mapping).
    Callers that need end-to-end corruption detection should use
    :func:`read_container`; the mapped path trades that check for
    constant-time loading, as the format documentation spells out.
    """
    import mmap as _mmap_module

    source = str(path)
    try:
        with open(source, "rb") as handle:
            mapping = _mmap_module.mmap(handle.fileno(), 0,
                                        access=_mmap_module.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise StorageError(f"cannot map {source}: {exc}") from None
    try:
        version, table = _parse_header(mapping, source)
    except StorageError:
        mapping.close()
        raise
    whole = memoryview(mapping)
    sections: Dict[str, memoryview] = {}
    try:
        for name, offset, length, _crc in table:
            if offset + length > len(mapping):
                raise StorageError(
                    f"{source}: section {name!r} extends past end of file")
            if name in sections:
                raise StorageError(f"{source}: duplicate section {name!r}")
            sections[name] = whole[offset:offset + length]
    except StorageError:
        for view in sections.values():
            view.release()
        whole.release()
        mapping.close()
        raise
    finally:
        whole.release()
    return MappedContainer(source, version, sections, mapping)
