"""Serializers for every persistable structure in the package.

Each structure is registered with a stable type name, a ``to_state`` function
producing a plain state tree (dicts / ints / arrays / nested registered
objects — see :mod:`repro.storage.format`) and a ``from_state`` function
rebuilding the live object *directly from the stored words*: no sequence is
re-encoded, no prefix sum recomputed, no trie re-sorted.  The only work done
at load time is reconstructing derived acceleration state (e.g. the bit
vector's cumulative popcounts) from the exact payload words that were stored,
which is what makes loading orders of magnitude cheaper than rebuilding.

The registry is keyed by *exact* type, so :class:`CrossCompressedIndex` and
its base class :class:`PermutedTrieIndex` round-trip to their own classes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple, Type

from repro.core.cross_compression import CrossCompressedIndex
from repro.core.index_2t import TwoTrieIndex
from repro.core.index_3t import PermutedTrieIndex
from repro.core.pairs import PairStructure
from repro.core.trie import PermutationTrie, TrieConfig
from repro.errors import StorageError
from repro.rdf.dictionary import Dictionary, NumericIndex, RdfDictionary
from repro.sequences.bitvector import BitVector
from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano
from repro.sequences.partitioned_elias_fano import (PartitionedEliasFano,
                                                    _LazyPartitions, _Partition,
                                                    flatten_partitions)
from repro.sequences.prefix_sum import PrefixSummedSequence, RangedSequence
from repro.sequences.vbyte import VByte
from repro.storage import format as binary_format

ToState = Callable[[Any], dict]
FromState = Callable[[dict], Any]

_BY_NAME: Dict[str, Tuple[Type, FromState]] = {}
_BY_TYPE: Dict[Type, Tuple[str, ToState]] = {}


def register(name: str, cls: Type, to_state: ToState, from_state: FromState) -> None:
    """Register a serializer; exact-type keyed, stable-name addressed."""
    if name in _BY_NAME or cls in _BY_TYPE:
        raise StorageError(f"serializer {name!r} / {cls.__name__} already registered")
    _BY_NAME[name] = (cls, from_state)
    _BY_TYPE[cls] = (name, to_state)


def type_name_of(obj: Any) -> str:
    """The registered type name of ``obj`` (raises for unregistered types)."""
    try:
        return _BY_TYPE[type(obj)][0]
    except KeyError:
        raise StorageError(
            f"no serializer registered for {type(obj).__name__}") from None


def encode_object(obj: Any) -> Tuple[str, dict]:
    """Hook for :func:`repro.storage.format.dumps`."""
    try:
        name, to_state = _BY_TYPE[type(obj)]
    except KeyError:
        raise StorageError(
            f"no serializer registered for {type(obj).__name__}") from None
    return name, to_state(obj)


def decode_object(name: str, state: dict) -> Any:
    """Hook for :func:`repro.storage.format.loads`."""
    try:
        _, from_state = _BY_NAME[name]
    except KeyError:
        raise StorageError(f"unknown stored type {name!r} "
                           f"(file written by a newer build?)") from None
    try:
        return from_state(state)
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"malformed state for stored type {name!r}: {exc}") from exc


def dumps_object(obj: Any) -> bytes:
    """Serialise one registered object (and its nested objects) to bytes."""
    return binary_format.dumps(obj, object_encoder=encode_object)


def loads_object(data: bytes) -> Any:
    """Rebuild an object serialised by :func:`dumps_object`."""
    return binary_format.loads(data, object_decoder=decode_object)


def loads_object_view(data) -> Any:
    """Rebuild an object with its arrays as views into ``data`` (zero-copy).

    ``data`` is typically a section view from a mapped container: array
    leaves become read-only numpy views over the file's pages instead of
    owned copies.  All stored words are treated as immutable by every
    structure in the package, so the only observable difference from
    :func:`loads_object` is that the bytes stay on disk until touched.
    """
    return binary_format.loads(data, object_decoder=decode_object,
                               zero_copy=True)


# --------------------------------------------------------------------------- #
# Sequence substrate.
# --------------------------------------------------------------------------- #

register(
    "bitvector", BitVector,
    lambda bv: {"num_bits": len(bv), "words": bv._words},
    # BitVector.__init__ rebuilds the cumulative rank counts from the exact
    # stored words — nothing is re-encoded.
    lambda state: BitVector(state["words"], state["num_bits"]),
)

register(
    "compact", CompactVector,
    lambda cv: {"words": cv._words, "width": cv.width, "size": len(cv)},
    lambda state: CompactVector(state["words"], state["width"], state["size"]),
)

register(
    "ef", EliasFano,
    lambda ef: {"low": ef._low, "high": ef._high, "size": len(ef),
                "universe": ef.universe, "low_bits": ef.low_bits},
    lambda state: EliasFano(state["low"], state["high"], state["size"],
                            state["universe"], state["low_bits"]),
)

register(
    "pef-partition", _Partition,
    lambda p: {"kind": p.kind, "base": p.base, "length": p.length,
               "payload": p.payload},
    lambda state: _Partition(state["kind"], state["base"], state["length"],
                             state["payload"]),
)

def _pef_state(pef: PartitionedEliasFano) -> dict:
    """Flat PEF state: parallel partition-scalar arrays + one word pool.

    Writing one nested object per partition (the original encoding, still
    accepted on read) made loading O(partitions) tagged-object decodes; the
    flat shape loads as six arrays and defers partition reconstruction to
    first touch, which is what keeps mmap-backed loads O(1).
    """
    state = flatten_partitions(pef._partitions)
    state.update({"upper_bounds": pef._upper_bounds, "size": len(pef),
                  "partition_size": pef.partition_size,
                  "universe": pef._universe})
    return state


def _pef_from_state(state: dict) -> PartitionedEliasFano:
    if "partitions" in state:  # legacy nested-object encoding
        partitions = state["partitions"]
    else:
        partitions = _LazyPartitions(state["kinds"], state["bases"],
                                     state["lengths"], state["extras"],
                                     state["low_bits"], state["offsets"],
                                     state["words"])
    return PartitionedEliasFano(partitions, state["upper_bounds"],
                                state["size"], state["partition_size"],
                                state["universe"])


register("pef", PartitionedEliasFano, _pef_state, _pef_from_state)

register(
    "vbyte", VByte,
    lambda vb: {"data": vb._data, "block_offsets": vb._block_offsets,
                "block_firsts": vb._block_firsts, "size": len(vb),
                "block_size": vb._block_size, "gapped": vb.is_gapped},
    lambda state: VByte(state["data"], state["block_offsets"],
                        state["block_firsts"], state["size"],
                        state["block_size"], state["gapped"]),
)

register(
    "ranged", RangedSequence,
    lambda rs: {"sequence": rs.sequence},
    lambda state: RangedSequence(state["sequence"]),
)

register(
    "prefix-summed", PrefixSummedSequence,
    lambda ps: {"sequence": ps.sequence},
    lambda state: PrefixSummedSequence(state["sequence"]),
)


# --------------------------------------------------------------------------- #
# Trie layer.
# --------------------------------------------------------------------------- #

register(
    "trie-config", TrieConfig,
    lambda config: {"level1_nodes": config.level1_nodes,
                    "level2_nodes": config.level2_nodes,
                    "codec_options": {name: dict(options) for name, options
                                      in config.codec_options.items()}},
    lambda state: TrieConfig(state["level1_nodes"], state["level2_nodes"],
                             state["codec_options"]),
)

register(
    "trie", PermutationTrie,
    lambda trie: {"permutation_name": trie.permutation_name,
                  "config": trie.config,
                  "num_first": trie.num_first,
                  "num_triples": trie.num_triples,
                  "pointers0": trie._pointers0,
                  "nodes1": trie._nodes1,
                  "pointers1": trie._pointers1,
                  "nodes2": trie._nodes2},
    lambda state: PermutationTrie(state["permutation_name"], state["config"],
                                  state["num_first"], state["pointers0"],
                                  state["nodes1"], state["pointers1"],
                                  state["nodes2"], state["num_triples"]),
)

register(
    "pairs", PairStructure,
    lambda ps: {"num_first": ps.num_first, "num_pairs": ps.num_pairs,
                "pointers": ps._pointers, "values": ps._values},
    lambda state: PairStructure(state["num_first"], state["pointers"],
                                state["values"], state["num_pairs"]),
)


# --------------------------------------------------------------------------- #
# Index families.
# --------------------------------------------------------------------------- #

register(
    "index-3t", PermutedTrieIndex,
    lambda index: {"tries": index.tries},
    lambda state: PermutedTrieIndex(state["tries"]),
)

register(
    "index-cc", CrossCompressedIndex,
    lambda index: {"tries": index.tries},
    lambda state: CrossCompressedIndex(state["tries"]),
)

register(
    "index-2t", TwoTrieIndex,
    lambda index: {"spo": index.trie("spo"),
                   "second": index._second,
                   "variant": index.variant,
                   "ps": index.ps_structure},
    lambda state: TwoTrieIndex(state["spo"], state["second"], state["variant"],
                               ps_structure=state["ps"]),
)


# --------------------------------------------------------------------------- #
# RDF dictionaries.
# --------------------------------------------------------------------------- #

register(
    "dictionary", Dictionary,
    lambda d: {"terms": d.terms()},
    # _restore skips the sort/dedup of __init__: the stored term list is
    # already in ID order.
    lambda state: Dictionary._restore(state["terms"]),
)

register(
    "numeric-index", NumericIndex,
    lambda n: {"scale": n._scale, "offset": n._offset, "sequence": n._sequence},
    lambda state: NumericIndex._restore(state["scale"], state["offset"],
                                        state["sequence"]),
)


def _rdf_dictionary_state(d: RdfDictionary) -> dict:
    shared = d.subjects is d.objects
    return {"subjects": d.subjects,
            "objects": None if shared else d.objects,
            "shared_resources": shared,
            "predicates": d.predicates,
            "numeric_objects": d.numeric_objects}


def _rdf_dictionary_from_state(state: dict) -> RdfDictionary:
    subjects = state["subjects"]
    objects = subjects if state["shared_resources"] else state["objects"]
    return RdfDictionary(subjects=subjects, predicates=state["predicates"],
                         objects=objects, numeric_objects=state["numeric_objects"])


register("rdf-dictionary", RdfDictionary,
         _rdf_dictionary_state, _rdf_dictionary_from_state)
