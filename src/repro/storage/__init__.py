"""Persistence subsystem: a versioned binary container format plus
save/load support for every layer of the package.

Public surface:

* :func:`save_index` / :func:`load_index` — whole index files (index +
  optional RDF dictionary), the format behind the ``repro`` CLI;
* :func:`save_object` / :func:`load_object` — standalone structures (any
  sequence codec, a bit vector, one permutation trie, a dictionary);
* :func:`file_info` — cheap inspection of a saved file;
* :class:`WriteAheadLog` (:mod:`repro.storage.wal`) — the durable update
  log behind the dynamic subsystem — and :class:`WalReader`, its
  read-only incremental follower used by the pre-fork serving pool;
* :data:`FORMAT_VERSION`, :data:`DELTA_FORMAT_VERSION`, :data:`MAGIC` —
  the container identity (delta-carrying files advertise the higher
  version so older builds refuse them instead of dropping the delta);
* :func:`dumps_object` / :func:`loads_object` — in-memory (de)serialisation,
  useful for tests and for shipping indexes over a wire.

All failure modes raise :class:`repro.errors.StorageError`.
"""

from repro.storage.codecs import dumps_object, loads_object, type_name_of
from repro.storage.container import (
    DELTA_FORMAT_VERSION,
    FORMAT_VERSION,
    MAGIC,
    SUPPORTED_VERSIONS,
    container_version,
    parse_container,
    read_container,
    verify_container,
    write_container,
)
from repro.storage.index_io import (
    LoadedIndex,
    file_info,
    load_index,
    load_object,
    save_index,
    save_object,
)
from repro.storage.wal import WalReader, WriteAheadLog

__all__ = [
    "DELTA_FORMAT_VERSION",
    "FORMAT_VERSION",
    "MAGIC",
    "SUPPORTED_VERSIONS",
    "WalReader",
    "WriteAheadLog",
    "container_version",
    "LoadedIndex",
    "dumps_object",
    "loads_object",
    "type_name_of",
    "parse_container",
    "read_container",
    "verify_container",
    "write_container",
    "file_info",
    "load_index",
    "load_object",
    "save_index",
    "save_object",
]
