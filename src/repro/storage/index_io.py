"""High-level persistence entry points: whole index files and standalone objects.

A saved index file is a container (see :mod:`repro.storage.container`) with
up to five sections:

* ``meta``    — a small state tree describing what the file holds (stored
  kind, layout name, triple count, producing library version);
* ``index``   — the serialised index object graph;
* ``dictionary`` — optional: the :class:`repro.rdf.dictionary.RdfDictionary`
  needed to run term-level (rather than ID-level) queries;
* ``stats``   — optional: the query planner's per-role cardinality
  histograms, so a loaded index plans with the same selectivity estimates as
  a freshly built one (without them the planner falls back to a
  bound-component heuristic);
* ``delta``   — optional: a dynamic-update snapshot (inserted triples plus
  delete tombstones not yet compacted into the index).  Files carrying one
  advertise :data:`repro.storage.container.DELTA_FORMAT_VERSION` so builds
  that would silently drop the delta refuse the file instead.

Standalone object files (a codec saved with ``sequence.save(path)``, a trie,
a dictionary) use the same container with ``meta`` + ``payload`` sections, so
every file produced by this package carries the same magic, version and
checksum protection.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, NamedTuple, Optional, Type, Union

from repro.errors import StorageError
from repro.storage import format as binary_format
from repro.storage.codecs import (dumps_object, loads_object,
                                  loads_object_view, type_name_of)
from repro.storage.container import (
    ALIGNED_FORMAT_VERSION,
    DELTA_FORMAT_VERSION,
    FORMAT_VERSION,
    container_version,
    map_container,
    parse_container,
    read_container,
    write_container,
)

PathLike = Union[str, Path]

SECTION_META = "meta"
SECTION_INDEX = "index"
SECTION_DICTIONARY = "dictionary"
SECTION_STATS = "stats"
SECTION_DELTA = "delta"
SECTION_PAYLOAD = "payload"


def _library_version() -> str:
    from repro import __version__
    return __version__


def _dump_meta(meta: dict) -> bytes:
    return binary_format.dumps(meta)


def _load_meta(sections: Dict[str, bytes], source: str) -> dict:
    if SECTION_META not in sections:
        raise StorageError(f"{source}: missing {SECTION_META!r} section")
    meta = binary_format.loads(sections[SECTION_META])
    if not isinstance(meta, dict):
        raise StorageError(f"{source}: malformed {SECTION_META!r} section")
    return meta


class LoadedIndex(NamedTuple):
    """What :func:`load_index` returns.

    ``index`` is always the *base* (immutable) index; if the file carried a
    dynamic-update snapshot it is in ``delta`` and :meth:`queryable` is the
    one-call way to get an index whose answers include it.
    """

    index: Any
    dictionary: Optional[Any]
    meta: dict
    planner_stats: Optional[Dict[int, Dict[int, int]]] = None
    delta: Optional[Any] = None

    def queryable(self, wal_path: Optional[PathLike] = None,
                  compaction_ratio: Optional[float] = None,
                  writable: bool = False) -> Any:
        """The index to answer queries with, delta overlay included.

        Returns the bare base index when the file had no delta and no
        dynamic features were requested; otherwise wraps it in a
        :class:`repro.dynamic.DynamicIndex` (restoring the stored delta and
        replaying ``wal_path`` if given).
        """
        if self.delta is None and wal_path is None and not writable:
            return self.index
        from repro.dynamic import DynamicIndex
        return DynamicIndex.open(self.index, wal_path=wal_path,
                                 delta=self.delta,
                                 compaction_ratio=compaction_ratio)


def _dump_planner_stats(cardinalities: Dict[int, Dict[int, int]]) -> bytes:
    """Encode per-role histograms as sorted (values, counts) array pairs."""
    import numpy as np
    roles = []
    for role in (0, 1, 2):
        histogram = cardinalities.get(role, {})
        values = np.fromiter(sorted(histogram), dtype=np.uint64,
                             count=len(histogram))
        counts = np.fromiter((histogram[int(v)] for v in values),
                             dtype=np.uint64, count=len(histogram))
        roles.append({"values": values, "counts": counts})
    return binary_format.dumps({"roles": roles})


def _load_planner_stats(payload: bytes, source: str) -> Dict[int, Dict[int, int]]:
    state = binary_format.loads(payload)
    if not isinstance(state, dict) or len(state.get("roles", ())) != 3:
        raise StorageError(f"{source}: malformed {SECTION_STATS!r} section")
    cardinalities: Dict[int, Dict[int, int]] = {}
    for role, entry in enumerate(state["roles"]):
        try:
            values, counts = entry["values"], entry["counts"]
            cardinalities[role] = {int(v): int(c)
                                   for v, c in zip(values, counts)}
        except (KeyError, TypeError, ValueError) as error:
            raise StorageError(
                f"{source}: malformed {SECTION_STATS!r} section "
                f"(role {role}: {error})") from None
    return cardinalities


def _dump_delta(delta: Any) -> bytes:
    """Encode a :class:`repro.dynamic.DeltaState` as sorted triple columns."""
    return binary_format.dumps(delta.to_columns())


def _load_delta(payload: bytes, source: str) -> Any:
    from repro.dynamic.delta import DeltaState
    state = binary_format.loads(payload)
    try:
        return DeltaState.from_columns(state)
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(f"{source}: malformed {SECTION_DELTA!r} section "
                           f"({error})") from None


def save_index(index: Any, path: PathLike, dictionary: Optional[Any] = None,
               planner_stats: Optional[Dict[int, Dict[int, int]]] = None,
               delta: Optional[Any] = None, aligned: bool = False) -> int:
    """Persist ``index`` (and optionally its RDF dictionary) to ``path``.

    Returns the number of bytes written.  The index may be any registered
    index family (3T, CC, 2Tp, 2To).  ``planner_stats`` — the
    :class:`repro.queries.planner.QueryPlanner` per-role cardinality
    histograms — travel with the file so selectivity-driven planning
    survives the save/load round trip.  A non-empty ``delta``
    (:class:`repro.dynamic.DeltaState`) adds the dynamic-update snapshot
    section and bumps the advertised format version.  ``aligned=True``
    writes format version 3 (64-byte-aligned sections) so the file can be
    memory-mapped with ``load_index(path, mmap=True)``; unaligned files can
    still be mapped, alignment just guarantees naturally-aligned array
    views.
    """
    if delta is not None and not delta:
        delta = None  # an empty delta is the same as no delta
    meta = {
        "kind": type_name_of(index),
        "layout": getattr(index, "name", type_name_of(index)),
        "num_triples": int(index.num_triples),
        "size_in_bits": int(index.size_in_bits()),
        "has_dictionary": dictionary is not None,
        "has_planner_stats": planner_stats is not None,
        "library_version": _library_version(),
    }
    if delta is not None:
        meta["has_delta"] = True
        meta["delta_inserted"] = int(delta.num_inserted)
        meta["delta_deleted"] = int(delta.num_deleted)
    sections: Dict[str, bytes] = {
        SECTION_META: _dump_meta(meta),
        SECTION_INDEX: dumps_object(index),
    }
    if dictionary is not None:
        sections[SECTION_DICTIONARY] = dumps_object(dictionary)
    if planner_stats is not None:
        sections[SECTION_STATS] = _dump_planner_stats(planner_stats)
    if delta is not None:
        sections[SECTION_DELTA] = _dump_delta(delta)
    if aligned:
        version = ALIGNED_FORMAT_VERSION
    else:
        version = FORMAT_VERSION if delta is None else DELTA_FORMAT_VERSION
    return write_container(path, sections, version=version)


def load_index(path: PathLike, load_dictionary: bool = True,
               mmap: bool = False) -> LoadedIndex:
    """Load an index file written by :func:`save_index`.

    ``load_dictionary=False`` skips decoding the (potentially large)
    dictionary section for callers that only need the index payload.  The
    returned ``index`` is the immutable base; call
    :meth:`LoadedIndex.queryable` to fold in a stored ``delta``.

    ``mmap=True`` memory-maps the file instead of reading it: the header is
    validated but payload bytes stay on disk, index arrays become read-only
    views over the page cache, and the call returns in near-constant time
    regardless of index size.  The trade-offs, per ``docs/STORAGE_FORMAT.md``:
    payload CRCs are *not* verified, and the first query to touch a region
    pays the page faults instead of load time.  Works for any supported
    format version; version-3 (aligned) files additionally guarantee
    naturally-aligned array views.
    """
    if mmap:
        container = map_container(path)
        sections: Dict[str, Any] = container.sections
        decode = loads_object_view
    else:
        sections = read_container(path)
        decode = loads_object
    meta = _load_meta(sections, str(path))
    if SECTION_INDEX not in sections:
        raise StorageError(f"{path}: missing {SECTION_INDEX!r} section "
                           f"(not an index file?)")
    index = decode(sections[SECTION_INDEX])
    dictionary = None
    if load_dictionary and SECTION_DICTIONARY in sections:
        dictionary = decode(sections[SECTION_DICTIONARY])
    planner_stats = None
    if SECTION_STATS in sections:
        planner_stats = _load_planner_stats(sections[SECTION_STATS], str(path))
    delta = None
    if SECTION_DELTA in sections:
        delta = _load_delta(sections[SECTION_DELTA], str(path))
    return LoadedIndex(index=index, dictionary=dictionary, meta=meta,
                       planner_stats=planner_stats, delta=delta)


def save_object(obj: Any, path: PathLike) -> int:
    """Persist one registered object (codec, trie, dictionary, ...) to ``path``."""
    meta = {
        "kind": type_name_of(obj),
        "library_version": _library_version(),
    }
    sections = {
        SECTION_META: _dump_meta(meta),
        SECTION_PAYLOAD: dumps_object(obj),
    }
    return write_container(path, sections)


def load_object(path: PathLike, expected_type: Optional[Type] = None) -> Any:
    """Load an object file written by :func:`save_object`.

    ``expected_type`` lets typed ``load`` classmethods reject files holding a
    different structure with a clear error instead of an attribute crash.
    """
    sections = read_container(path)
    _load_meta(sections, str(path))
    if SECTION_PAYLOAD not in sections:
        raise StorageError(f"{path}: missing {SECTION_PAYLOAD!r} section "
                           f"(is this a full index file? use load_index)")
    obj = loads_object(sections[SECTION_PAYLOAD])
    if expected_type is not None and not isinstance(obj, expected_type):
        raise StorageError(
            f"{path}: holds a {type(obj).__name__}, expected "
            f"{expected_type.__name__}")
    return obj


def file_info(path: PathLike, include_breakdown: bool = False) -> dict:
    """Describe a container file without fully decoding its payloads.

    Returns the decoded ``meta`` section plus per-section and total byte
    sizes — the data behind the CLI ``info`` subcommand.  The reported
    ``format_version`` is the version *stored in the file* (not this
    build's default), so operators can tell delta-carrying files apart.
    With ``include_breakdown=True`` the index payload is additionally
    decoded (from the same single read of the file) and its per-component
    ``space_breakdown`` attached under ``"space_breakdown"``.
    """
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from None
    sections = parse_container(data, source=str(path))
    meta = _load_meta(sections, str(path))
    section_sizes = {name: len(payload) for name, payload in sections.items()}
    info = {
        "path": str(path),
        "format_version": container_version(data, source=str(path)),
        "meta": meta,
        "section_bytes": section_sizes,
        "total_bytes": len(data),
    }
    if include_breakdown:
        if SECTION_INDEX not in sections:
            raise StorageError(f"{path}: missing {SECTION_INDEX!r} section "
                               f"(not an index file?)")
        info["space_breakdown"] = loads_object(sections[SECTION_INDEX]).space_breakdown()
    return info
