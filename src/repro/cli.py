"""Command-line interface: build, update, query and inspect saved indexes.

The CLI makes the system operable end-to-end without writing Python::

    repro build data.nt.gz -o data.ridx --layout 2tp
    repro info data.ridx
    repro query data.ridx --pattern '<http://example.org/alice> ? ?'
    repro query data.ridx --sparql 'SELECT ?o WHERE { 0 1 ?o }'
    repro explain data.ridx --sparql 'SELECT ?o WHERE { 0 1 ?o }'
    repro update data.ridx more.nt
    repro compact data.ridx

``build`` ingests an N-Triples file (gzip-compressed ``.nt.gz`` works
anywhere a plain file does; with ``--ids``, whitespace-separated integer
triples), builds one of the paper's four layouts and persists it — together
with the string dictionaries when the input was N-Triples — into a single
checksummed container file.  ``query`` loads such a file in a fresh process
and answers triple selection patterns or SPARQL BGPs; ``info`` prints the
file's metadata, per-section sizes and space statistics.  ``update``
inserts (or, with ``--delete``, removes) triples through the dynamic delta
overlay and saves the file back with a ``delta`` section; ``compact`` folds
an accumulated delta into a freshly built index.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.errors import ParseError, ReproError

#: Pattern-term tokens accepted by ``query --pattern``: a wildcard (``?`` or
#: ``?name``), an IRI, a literal with optional language tag or datatype, or a
#: plain integer ID.
_PATTERN_TOKEN_RE = re.compile(
    r"""\?[A-Za-z0-9_]*                                 # wildcard
      | <[^>]*>                                         # IRI
      | "(?:[^"\\]|\\.)*"(?:@[A-Za-z][A-Za-z0-9\-]*|\^\^<[^>]*>)?  # literal
      | \d+                                             # integer ID
      """,
    re.VERBOSE,
)


def _tokenize_pattern(text: str) -> List[str]:
    tokens = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _PATTERN_TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"cannot parse pattern term at {text[position:]!r}")
        tokens.append(match.group(0))
        position = match.end()
    return tokens


def _resolve_pattern(text: str, dictionary) -> Optional[Tuple[Optional[int], ...]]:
    """Turn ``--pattern 'S P O'`` into an ``(s, p, o)`` tuple of IDs/wildcards.

    Returns ``None`` when a constant term is absent from the dictionary — the
    pattern then provably matches nothing.
    """
    tokens = _tokenize_pattern(text)
    if len(tokens) != 3:
        raise ParseError(
            f"a pattern needs exactly 3 terms (subject predicate object), "
            f"got {len(tokens)}: {text!r}")
    components: List[Optional[int]] = []
    for role, token in enumerate(tokens):
        if token.startswith("?"):
            components.append(None)
        elif token.isdigit():
            components.append(int(token))
        else:
            if dictionary is None:
                raise ParseError(
                    f"term {token} needs a dictionary, but this index was "
                    f"built without one (--ids); use integer IDs")
            role_dictionary = (dictionary.subjects, dictionary.predicates,
                               dictionary.objects)[role]
            identifier = role_dictionary.get(token)
            if identifier is None:
                return None
            components.append(identifier)
    return tuple(components)


def _format_triple(triple: Tuple[int, int, int], dictionary) -> str:
    if dictionary is None:
        return "{} {} {}".format(*triple)
    # Lenient: IDs inserted dynamically may have no term yet.
    s, p, o = dictionary.decode_lenient(triple)
    return f"{s} {p} {o} ."


# --------------------------------------------------------------------------- #
# build
# --------------------------------------------------------------------------- #

def _read_id_triples(path: str) -> List[Tuple[int, int, int]]:
    from repro.rdf.ntriples import open_text

    triples = []
    with open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3 or not all(part.isdigit() for part in parts):
                raise ParseError(
                    f"{path}:{line_number}: expected three integer IDs, "
                    f"got {stripped!r}")
            triples.append((int(parts[0]), int(parts[1]), int(parts[2])))
    return triples


def _command_build(args: argparse.Namespace) -> int:
    from repro.core.builder import IndexBuilder
    from repro.queries.planner import QueryPlanner
    from repro.rdf.dictionary import RdfDictionary
    from repro.rdf.ntriples import parse_ntriples_file, term_triples_to_keys
    from repro.rdf.triples import TripleStore

    started = time.perf_counter()
    if args.ids:
        dictionary = None
        store = TripleStore.from_triples(_read_id_triples(args.input))
    else:
        term_triples = term_triples_to_keys(parse_ntriples_file(args.input))
        dictionary, store = RdfDictionary.from_term_triples(term_triples)
    parse_seconds = time.perf_counter() - started
    if len(store) == 0:
        print(f"error: {args.input} contains no triples", file=sys.stderr)
        return 1

    started = time.perf_counter()
    index = IndexBuilder(store).build(args.layout)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    planner_stats = (None if args.no_stats
                     else QueryPlanner.cardinalities_from_store(store))
    written = index.save(args.output, dictionary=dictionary,
                         planner_stats=planner_stats, aligned=args.align)
    save_seconds = time.perf_counter() - started

    print(f"indexed {len(store)} triples "
          f"({store.num_subjects} subjects, {store.num_predicates} predicates, "
          f"{store.num_objects} objects)")
    print(f"layout: {index.name}  ({index.bits_per_triple():.2f} bits/triple in memory)")
    print(f"wrote {args.output}: {written} bytes "
          f"({written * 8 / len(store):.2f} bits/triple on disk)")
    print(f"timings: parse {parse_seconds:.3f}s, build {build_seconds:.3f}s, "
          f"save {save_seconds:.3f}s")
    return 0


# --------------------------------------------------------------------------- #
# update / compact
# --------------------------------------------------------------------------- #

def _resolve_update_triples(args: argparse.Namespace, dictionary
                            ) -> List[Tuple[int, int, int]]:
    """The ID triples an ``update`` run applies (terms resolved/minted)."""
    from repro.rdf.ntriples import parse_ntriples_file

    if args.ids:
        return _read_id_triples(args.input)
    if dictionary is None:
        raise ParseError(
            f"{args.index} was built without a dictionary (--ids); pass "
            f"--ids and integer triples to update it")
    triples: List[Tuple[int, int, int]] = []
    for s, p, o in parse_ntriples_file(args.input):
        if args.delete:
            # Unknown terms cannot name an indexed triple: skip, don't mint.
            ids = (dictionary.subjects.get(s.key()),
                   dictionary.predicates.get(p.key()),
                   dictionary.objects.get(o.key()))
            if None in ids:
                continue
            triples.append(ids)
        else:
            triples.append(dictionary.encode_or_add(s.key(), p.key(), o.key()))
    return triples


def _command_update(args: argparse.Namespace) -> int:
    from repro.storage import load_index

    started = time.perf_counter()
    loaded = load_index(args.index)
    index = loaded.queryable(writable=True,
                             compaction_ratio=args.compact_ratio)
    triples = _resolve_update_triples(args, loaded.dictionary)
    result = (index.delete(triples) if args.delete
              else index.insert(triples))
    output = args.output or args.index
    # An auto-compaction recomputed the cardinality histograms; saving the
    # pre-update ones would make every later load plan on stale estimates.
    planner_stats = (result.compaction.cardinalities
                     if result.compaction is not None
                     else loaded.planner_stats)
    written = index.save(output, dictionary=loaded.dictionary,
                         planner_stats=planner_stats)
    seconds = time.perf_counter() - started
    verb = "deleted" if args.delete else "inserted"
    applied = result.deleted if args.delete else result.inserted
    print(f"{verb} {applied} of {len(triples)} triples "
          f"(epoch {index.epoch}, {index.num_triples} total)")
    if result.compaction is not None:
        print(f"compaction triggered: delta folded into a fresh "
              f"{result.compaction.layout} index "
              f"in {result.compaction.seconds:.3f}s")
    compact_error = index.delta_statistics().get("auto_compact_error")
    if compact_error:
        # The update itself applied and is saved below; the operator asked
        # for threshold compaction, so its failure must not be silent.
        print(f"warning: requested auto-compaction failed "
              f"({compact_error}); the delta was saved uncompacted — "
              f"fix the cause and run 'repro compact'", file=sys.stderr)
    delta = index.delta
    print(f"delta: {delta.num_inserted} inserted, "
          f"{delta.num_deleted} tombstones")
    print(f"wrote {output}: {written} bytes in {seconds:.3f}s")
    return 0


def _command_compact(args: argparse.Namespace) -> int:
    from repro.storage import load_index

    started = time.perf_counter()
    loaded = load_index(args.index)
    index = loaded.queryable()
    if not hasattr(index, "compact") or not index.delta:
        print(f"{args.index}: no delta to compact")
        return 0
    result = index.compact()
    output = args.output or args.index
    written = index.save(output, dictionary=loaded.dictionary,
                         planner_stats=result.cardinalities)
    seconds = time.perf_counter() - started
    print(f"compacted {result.absorbed_inserts} inserts and "
          f"{result.absorbed_deletes} tombstones into a fresh "
          f"{result.layout} index ({result.num_triples} triples)")
    print(f"wrote {output}: {written} bytes "
          f"(rebuild {result.seconds:.3f}s, total {seconds:.3f}s)")
    return 0


# --------------------------------------------------------------------------- #
# query
# --------------------------------------------------------------------------- #

def _run_pattern_query(index, dictionary, args: argparse.Namespace) -> int:
    pattern = _resolve_pattern(args.pattern, dictionary)
    # Stream: only --json needs the triples materialised; --count and the
    # plain listing must stay O(1) in memory on huge result sets.
    matched = 0
    collected = [] if args.json else None
    if pattern is not None and (args.limit is None or args.limit > 0):
        for triple in index.select(pattern):
            matched += 1
            if collected is not None:
                collected.append(triple)
            elif not args.count:
                print(_format_triple(triple, dictionary))
            if args.limit is not None and matched >= args.limit:
                break
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(jsonio.pattern_results_to_json(
            collected, dictionary=dictionary)))
    elif args.count:
        print(matched)
    else:
        print(f"{matched} matching triples", file=sys.stderr)
    return 0


def _run_sparql_query(index, dictionary, text: str, args: argparse.Namespace,
                      cardinalities=None) -> int:
    from repro.queries.planner import execute_bgp
    from repro.queries.sparql import parse_sparql

    query = parse_sparql(text, dictionary=dictionary)
    engine = getattr(args, "engine", None) or "auto"
    results, statistics = execute_bgp(index, query, max_results=args.limit,
                                      cardinalities=cardinalities,
                                      engine=engine)
    variables = list(query.projection or query.variables())
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(jsonio.sparql_results_to_json(
            variables, results, statistics)))
        return 0
    if args.count:
        print(len(results))
        return 0
    print("\t".join(variables))
    for binding in results:
        print("\t".join(str(binding.get(variable, "")) for variable in variables))
    print(f"{len(results)} solutions, {statistics.patterns_executed} atomic "
          f"patterns executed ({statistics.engine} engine)", file=sys.stderr)
    return 0


def _command_query(args: argparse.Namespace) -> int:
    from repro.storage import load_index

    if args.pattern is not None and args.engine is not None:
        # Mirror the HTTP endpoint: the executor knob has no meaning for a
        # single selection pattern, so reject it instead of ignoring it.
        print("error: --engine only applies to SPARQL queries, not --pattern",
              file=sys.stderr)
        return 2
    loaded = load_index(args.index, mmap=args.mmap)
    # A file carrying a delta section must answer through the merged view.
    index = loaded.queryable()
    if args.pattern is not None:
        return _run_pattern_query(index, loaded.dictionary, args)
    if args.sparql is not None:
        return _run_sparql_query(index, loaded.dictionary, args.sparql,
                                 args, cardinalities=loaded.planner_stats)
    with open(args.sparql_file, "r", encoding="utf-8") as handle:
        return _run_sparql_query(index, loaded.dictionary, handle.read(),
                                 args, cardinalities=loaded.planner_stats)


# --------------------------------------------------------------------------- #
# explain
# --------------------------------------------------------------------------- #

def _command_explain(args: argparse.Namespace) -> int:
    from repro.obs import render_profile
    from repro.service.engine import QueryService

    if args.sparql is not None:
        text = args.sparql
    else:
        with open(args.sparql_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    service = QueryService.from_file(args.index, mmap=args.mmap,
                                     engine=args.engine or "auto")
    try:
        result = service.execute(text, limit=args.limit, profile=True)
    finally:
        service.close()
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(result.profile))
        return 0
    print(render_profile(result.profile))
    print(f"{result.count} solutions in "
          f"{result.elapsed_seconds * 1000:.2f}ms "
          f"({result.statistics.get('engine', '?')} engine)",
          file=sys.stderr)
    return 0


# --------------------------------------------------------------------------- #
# info
# --------------------------------------------------------------------------- #

def _command_info(args: argparse.Namespace) -> int:
    from repro.storage import file_info

    info = file_info(args.index, include_breakdown=args.breakdown)
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(jsonio.info_to_json(info)))
        return 0
    meta = info["meta"]
    print(f"file: {info['path']}")
    print(f"container format version: {info['format_version']}")
    print(f"written by repro version: {meta.get('library_version', '?')}")
    print(f"layout: {meta.get('layout', '?')}")
    num_triples = meta.get("num_triples", 0)
    print(f"triples: {num_triples}")
    if meta.get("has_delta"):
        inserted = meta.get("delta_inserted", 0)
        deleted = meta.get("delta_deleted", 0)
        print(f"delta: {inserted} inserted, {deleted} tombstones "
              f"({num_triples + inserted - deleted} merged triples; "
              f"run 'repro compact' to fold in)")
    print(f"dictionary bundled: {'yes' if meta.get('has_dictionary') else 'no'}")
    total = info["total_bytes"]
    print(f"file size: {total} bytes")
    if num_triples:
        print(f"on-disk bits/triple: {total * 8 / num_triples:.2f}")
        size_in_bits = meta.get("size_in_bits")
        if size_in_bits:
            print(f"in-memory bits/triple: {size_in_bits / num_triples:.2f}")
    print("sections:")
    for name, size in sorted(info["section_bytes"].items()):
        print(f"    {name:<12} {size} bytes")
    if args.breakdown:
        print("space breakdown (bits, in memory):")
        for component, bits in info["space_breakdown"].items():
            print(f"    {component:<18} {bits}")
    return 0


# --------------------------------------------------------------------------- #
# serve
# --------------------------------------------------------------------------- #

def _command_serve(args: argparse.Namespace) -> int:
    import signal

    if args.workers > 1:
        # Pre-fork pool: master + single writer + N accepting workers over
        # one shared listener and one mmap-shared index.  The pool prints
        # its own "serving on ..." line and handles SIGTERM/SIGINT itself.
        from repro.service.pool import ServerPool
        pool = ServerPool(
            args.index, workers=args.workers,
            host=args.host, port=args.port,
            writable=args.writable or args.wal is not None,
            wal_path=args.wal, compaction_ratio=args.compact_ratio,
            mmap=args.mmap, quiet=args.quiet,
            max_inflight=args.max_inflight,
            rate_limit=args.rate_limit, rate_burst=args.rate_burst,
            log_format=args.log_format,
            service_options=dict(
                plan_cache_size=args.plan_cache,
                result_cache_size=args.result_cache,
                default_timeout=args.timeout,
                max_limit=args.max_limit,
                engine=args.engine,
                slow_log=args.slow_log,
                slow_ms=args.slow_ms))
        return pool.run()

    from repro.service import (
        AdmissionControl,
        MetricsBlock,
        QueryService,
        TokenBucketLimiter,
        build_server,
    )

    started = time.perf_counter()
    service = QueryService.from_file(
        args.index,
        writable=args.writable,
        wal_path=args.wal,
        compaction_ratio=args.compact_ratio,
        plan_cache_size=args.plan_cache,
        result_cache_size=args.result_cache,
        default_timeout=args.timeout,
        max_limit=args.max_limit,
        engine=args.engine,
        mmap=args.mmap,
        slow_log=args.slow_log,
        slow_ms=args.slow_ms)
    load_seconds = time.perf_counter() - started
    block = MetricsBlock(1)
    limiter = (TokenBucketLimiter(args.rate_limit, args.rate_burst)
               if args.rate_limit > 0 else None)
    server = build_server(service, host=args.host, port=args.port,
                          quiet=args.quiet,
                          admission=AdmissionControl(args.max_inflight),
                          rate_limiter=limiter,
                          log_format=args.log_format,
                          metrics=block.worker(0), metrics_block=block)
    host, port = server.server_address[:2]
    print(f"loaded {args.index} in {load_seconds:.3f}s "
          f"({service.index.num_triples} triples, layout "
          f"{getattr(service.index, 'name', '?')})")
    writable = service.statistics()["index"]["writable"]
    endpoints = "POST /query, GET /stats, GET /metrics, GET /healthz"
    if writable:
        endpoints = "POST /query, POST /update, POST /compact, " \
                    "GET /stats, GET /metrics, GET /healthz"
        durability = (f"WAL {args.wal}" if args.wal
                      else "in-memory only (no --wal)")
        print(f"writable: updates accepted, {durability}")
    print(f"serving on http://{host}:{port}  "
          f"({endpoints}; Ctrl-C to stop)",
          flush=True)

    def _sigterm(_signum, _frame):
        # Containers and orchestrators stop services with SIGTERM; route it
        # through the KeyboardInterrupt path so the shutdown is identical
        # to Ctrl-C (server_close + WAL release) instead of the default
        # kill skipping cleanup entirely.
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous_handler)
        server.server_close()
        service.close()
    return 0


# --------------------------------------------------------------------------- #
# verify
# --------------------------------------------------------------------------- #

def _command_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.storage import verify_container

    if Path(args.index).is_dir():
        return _verify_cluster_dir(args)
    report = verify_container(args.index)
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(report))
        return 0 if report["ok"] else 1
    print(f"file: {report['path']}")
    print(f"container format version: {report['format_version']}"
          + (" (aligned)" if report["aligned"] else ""))
    print(f"file size: {report['total_bytes']} bytes, "
          f"{report['num_sections']} sections")
    for section in report["sections"]:
        status = "ok" if not section["errors"] else "; ".join(section["errors"])
        print(f"    {section['name']:<12} offset {section['offset']:>10} "
              f"length {section['length']:>10}  {status}")
    if report["ok"]:
        print("all section checksums verified")
        return 0
    print(f"error: {len(report['problems'])} problem(s) found",
          file=sys.stderr)
    return 1


def _verify_cluster_dir(args: argparse.Namespace) -> int:
    """Verify a cluster directory: manifest signature + every container."""
    from pathlib import Path

    from repro.cluster.partition import MANIFEST_NAME, META_NAME, read_manifest
    from repro.storage import verify_container

    cluster_dir = Path(args.index)
    manifest = read_manifest(cluster_dir / MANIFEST_NAME,
                             getattr(args, "key", None))
    containers = [manifest.get("meta_container", META_NAME)]
    for entry in manifest["shards"]:
        containers.append(entry["primary"])
        if entry.get("replica"):
            containers.append(entry["replica"])
    reports = []
    for name in containers:
        reports.append(verify_container(cluster_dir / name))
    ok = all(report["ok"] for report in reports)
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps({
            "ok": ok,
            "manifest": {"num_shards": manifest["num_shards"],
                         "num_replicas": manifest.get("num_replicas", 1),
                         "version": manifest.get("version", 1),
                         "num_triples": manifest["num_triples"]},
            "containers": reports}))
        return 0 if ok else 1
    print(f"cluster: {cluster_dir}")
    print(f"manifest: signature ok, {manifest['num_shards']} shard(s), "
          f"{manifest.get('num_replicas', 1)} replica(s), topology version "
          f"{manifest.get('version', 1)}, {manifest['num_triples']} triples")
    for name, report in zip(containers, reports):
        status = ("ok" if report["ok"]
                  else "; ".join(str(p) for p in report["problems"]))
        print(f"    {name:<28} {report['total_bytes']:>10} bytes  {status}")
    if ok:
        print("manifest and all container checksums verified")
        return 0
    print("error: container problem(s) found", file=sys.stderr)
    return 1


# --------------------------------------------------------------------------- #
# partition / rebalance / shard / coordinator
# --------------------------------------------------------------------------- #

def _command_partition(args: argparse.Namespace) -> int:
    from repro.cluster.partition import build_cluster

    started = time.perf_counter()
    manifest = build_cluster(
        args.index, args.output, args.shards,
        layout=args.layout, replica_layout=args.replica_layout,
        key=args.key, aligned=not args.no_align,
        num_replicas=args.replicas)
    seconds = time.perf_counter() - started
    total = sum(entry["num_triples"] for entry in manifest["shards"])
    print(f"partitioned {total} triples into {manifest['num_shards']} "
          f"shard(s) x {manifest['num_replicas']} replica(s) under "
          f"{args.output} in {seconds:.3f}s")
    for entry in manifest["shards"]:
        line = (f"    shard {entry['id']}: {entry['num_triples']} primary "
                f"triples ({entry['primary']})")
        if entry.get("replica"):
            line += (f", {entry['replica_num_triples']} replica triples "
                     f"({entry['replica']})")
        print(line)
    print("manifest: signed manifest.json (verify with the same key on load)")
    return 0


def _command_rebalance(args: argparse.Namespace) -> int:
    from repro.cluster.partition import rebalance_cluster

    started = time.perf_counter()
    manifest = rebalance_cluster(
        args.cluster, args.shards, key=args.key,
        aligned=not args.no_align, num_replicas=args.replicas)
    seconds = time.perf_counter() - started
    print(f"rebalanced {manifest['num_triples']} triples into "
          f"{manifest['num_shards']} shard(s) under {args.cluster} in "
          f"{seconds:.3f}s (topology version {manifest['version']})")
    for entry in manifest["shards"]:
        print(f"    shard {entry['id']}: {entry['num_triples']} primary "
              f"triples ({entry['primary']})")
    print("restart the shard servers, then audit with 'repro verify'")
    return 0


def _serve_until_interrupt(serve, close) -> int:
    """Run a blocking serve loop with SIGTERM folded into Ctrl-C."""
    import signal

    def _sigterm(_signum, _frame):
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _sigterm)
    try:
        serve()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous_handler)
        close()
    return 0


def _command_shard(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.cluster.partition import MANIFEST_NAME, read_manifest
    from repro.cluster.shard import ShardServer
    from repro.errors import ClusterError

    cluster_dir = Path(args.cluster)
    manifest = read_manifest(cluster_dir / MANIFEST_NAME, args.key)
    shards = manifest["shards"]
    if not 0 <= args.id < len(shards):
        raise ClusterError(
            f"shard id {args.id} out of range; the manifest describes "
            f"{len(shards)} shard(s)")
    entry = shards[args.id]
    replica = entry.get("replica")
    if args.port is not None:
        port = args.port
    else:
        # Default layout: 8390 + id for leaders, then one block of K
        # ports per extra replica (e.g. K=2: leaders 8390/8391,
        # replica-1 processes 8392/8393).
        port = 8390 + args.id + args.replica * len(shards)
    server = ShardServer(
        args.id, cluster_dir / entry["primary"],
        cluster_dir / replica if replica else None,
        host=args.host, port=port, replica_index=args.replica,
        compaction_ratio=args.compact_ratio, mmap=args.mmap, quiet=False)
    return _serve_until_interrupt(server.serve_forever, server.close)


def _command_coordinator(args: argparse.Namespace) -> int:
    from repro.cluster.coordinator import build_coordinator, parse_replica_set

    addresses = [parse_replica_set(text) for text in args.shard]
    server = build_coordinator(
        args.cluster, addresses, host=args.host, port=args.port,
        key=args.key, quiet=args.quiet, best_effort=args.best_effort,
        default_timeout=args.timeout, max_limit=args.max_limit,
        engine=args.engine, log_format=args.log_format,
        slow_log=args.slow_log, slow_ms=args.slow_ms)
    host, port = server.server_address[:2]
    endpoints = sum(len(group) for group in addresses)
    print(f"coordinating {len(addresses)} shard(s) over {endpoints} "
          f"endpoint(s) on http://{host}:{port}  "
          f"(POST /query, POST /update, POST /compact, GET /stats, "
          f"GET /metrics, GET /healthz; Ctrl-C to stop)", flush=True)

    def _close():
        server.server_close()
        server.service.close()

    return _serve_until_interrupt(server.serve_forever, _close)


# --------------------------------------------------------------------------- #
# Argument parsing.
# --------------------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compressed RDF triple indexes: build, query and inspect "
                    "persisted index files.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser(
        "build", help="index an N-Triples file and save it")
    build.add_argument("input", help="input file (N-Triples, or integer "
                                     "triples with --ids)")
    build.add_argument("-o", "--output", required=True,
                       help="output index file path")
    build.add_argument("--layout", default="2tp",
                       choices=("3t", "cc", "2tp", "2to"),
                       help="index layout (default: 2tp, the paper's pick)")
    build.add_argument("--ids", action="store_true",
                       help="input lines are 's p o' integer IDs; no "
                            "dictionary is built")
    build.add_argument("--no-stats", action="store_true",
                       help="skip bundling the planner's cardinality "
                            "histograms into the output file")
    build.add_argument("--align", action="store_true",
                       help="write the v3 container with 64-byte aligned "
                            "sections, the layout 'query --mmap' and "
                            "'serve --mmap' map most efficiently")
    build.set_defaults(handler=_command_build)

    update = subparsers.add_parser(
        "update", help="insert or delete triples through the dynamic delta")
    update.add_argument("index", help="index file written by 'repro build'")
    update.add_argument("input",
                        help="triples to apply (N-Triples, .nt.gz, or "
                             "integer IDs with --ids)")
    update.add_argument("-o", "--output", default=None,
                        help="write the updated index here instead of "
                             "in-place")
    update.add_argument("--delete", action="store_true",
                        help="delete the listed triples instead of "
                             "inserting them")
    update.add_argument("--ids", action="store_true",
                        help="input lines are 's p o' integer IDs")
    update.add_argument("--compact-ratio", type=float, default=None,
                        metavar="RATIO",
                        help="compact before saving when the delta exceeds "
                             "RATIO * base triples (default/0: never)")
    update.set_defaults(handler=_command_update)

    compact = subparsers.add_parser(
        "compact", help="fold an accumulated delta into a fresh index")
    compact.add_argument("index", help="index file with a delta section")
    compact.add_argument("-o", "--output", default=None,
                         help="write the compacted index here instead of "
                              "in-place")
    compact.set_defaults(handler=_command_compact)

    query = subparsers.add_parser(
        "query", help="run a triple pattern or SPARQL BGP against a saved index")
    query.add_argument("index", help="index file written by 'repro build'")
    what = query.add_mutually_exclusive_group(required=True)
    what.add_argument("--pattern",
                      help="triple pattern, e.g. '<iri> ? ?' or '1 ? 4' "
                           "(? is a wildcard)")
    what.add_argument("--sparql", help="SPARQL SELECT query text")
    what.add_argument("--sparql-file", help="file containing a SPARQL query")
    query.add_argument("--count", action="store_true",
                       help="print only the number of results")
    query.add_argument("--limit", type=int, default=None,
                       help="stop after this many results")
    query.add_argument("--json", action="store_true",
                       help="print results as JSON (same shape as the "
                            "serve endpoint)")
    # Kept as literals (mirroring repro.queries.ENGINES) so building the
    # parser stays import-light; the library layer re-validates anyway.
    # Default None = "auto", distinguished so --pattern can reject an
    # explicit --engine the way the HTTP endpoint does.
    query.add_argument("--engine", default=None,
                       choices=("nested", "wcoj", "auto"),
                       help="BGP executor (SPARQL only): nested-loop "
                            "pipeline, leapfrog worst-case-optimal multiway "
                            "join, or auto (default: auto picks wcoj for "
                            "cyclic/multi-join BGPs)")
    query.add_argument("--mmap", action="store_true",
                       help="memory-map the index file instead of reading "
                            "it eagerly (O(1) start-up; skips per-section "
                            "payload checksums)")
    query.set_defaults(handler=_command_query)

    explain = subparsers.add_parser(
        "explain",
        help="run a SPARQL query with profiling on and pretty-print its "
             "span tree (plan choice, estimated vs. actual cardinalities, "
             "per-operator counters)")
    explain.add_argument("index", help="index file written by 'repro build'")
    what = explain.add_mutually_exclusive_group(required=True)
    what.add_argument("--sparql", help="SPARQL SELECT query text")
    what.add_argument("--sparql-file", help="file containing a SPARQL query")
    explain.add_argument("--engine", default=None,
                         choices=("nested", "wcoj", "auto"),
                         help="BGP executor (default: auto)")
    explain.add_argument("--limit", type=int, default=None,
                         help="stop after this many results")
    explain.add_argument("--json", action="store_true",
                         help="print the raw profile span tree as JSON "
                              "instead of rendering it")
    explain.add_argument("--mmap", action="store_true",
                         help="memory-map the index file instead of reading "
                              "it eagerly")
    explain.set_defaults(handler=_command_explain)

    info = subparsers.add_parser(
        "info", help="print size and statistics of a saved index")
    info.add_argument("index", help="index file written by 'repro build'")
    info.add_argument("--breakdown", action="store_true",
                      help="also load the index and print its per-component "
                           "space breakdown")
    info.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    info.set_defaults(handler=_command_info)

    serve = subparsers.add_parser(
        "serve", help="load an index once and serve HTTP queries from it")
    serve.add_argument("index", help="index file written by 'repro build'")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8377,
                       help="TCP port (default: 8377; 0 picks a free port)")
    serve.add_argument("--plan-cache", type=int, default=256, metavar="N",
                       help="plan cache entries (default: 256)")
    serve.add_argument("--result-cache", type=int, default=256, metavar="N",
                       help="result cache entries (default: 256; 0 disables)")
    serve.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                       help="default per-query wall-clock timeout "
                            "(default: 30)")
    serve.add_argument("--max-limit", type=int, default=100_000, metavar="N",
                       help="largest result page a request may ask for "
                            "(default: 100000)")
    serve.add_argument("--engine", default="auto",
                       choices=("nested", "wcoj", "auto"),
                       help="default BGP executor for requests that do not "
                            "choose one (default: auto)")
    serve.add_argument("--writable", action="store_true",
                       help="accept POST /update and POST /compact "
                            "(implied by --wal; a delta-carrying index "
                            "file is served with its merged view but "
                            "stays read-only without this flag)")
    serve.add_argument("--wal", default=None, metavar="PATH",
                       help="write-ahead log path: acknowledged updates "
                            "survive a crash and are replayed on restart "
                            "(implies --writable)")
    serve.add_argument("--compact-ratio", type=float, default=0.25,
                       metavar="RATIO",
                       help="auto-compact when the delta exceeds RATIO * "
                            "base triples; bounds the delta's per-batch "
                            "copy-on-write cost (default: 0.25; 0 disables, "
                            "leaving only explicit POST /compact)")
    serve.add_argument("--mmap", action="store_true",
                       help="memory-map the index file instead of reading "
                            "it eagerly (O(1) start-up; skips per-section "
                            "payload checksums)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes (default: 1 = one threaded "
                            "process; N >= 2 forks a pre-fork pool sharing "
                            "the listener and the mmap-loaded index, with "
                            "writes routed to a single writer process)")
    serve.add_argument("--max-inflight", type=int, default=64, metavar="N",
                       help="admission control: concurrent requests one "
                            "worker executes before shedding with 503 "
                            "(default: 64)")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       metavar="RPS",
                       help="per-client token-bucket rate limit in "
                            "requests/second, answered with 429 beyond it "
                            "(default: 0 = unlimited)")
    serve.add_argument("--rate-burst", type=float, default=None,
                       metavar="N",
                       help="token-bucket depth for --rate-limit "
                            "(default: 2x the rate)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    serve.add_argument("--log-format", default="text",
                       choices=("text", "json"),
                       help="structured log format for access and "
                            "supervision lines (default: text)")
    serve.add_argument("--slow-log", default=None, metavar="PATH",
                       help="append a JSONL record (with the full execution "
                            "profile) for every query slower than --slow-ms "
                            "to PATH; safe under --workers (atomic "
                            "appends)")
    serve.add_argument("--slow-ms", type=float, default=500.0, metavar="N",
                       help="slow-query threshold in milliseconds for "
                            "--slow-log (default: 500)")
    serve.set_defaults(handler=_command_serve)

    verify = subparsers.add_parser(
        "verify", help="audit a saved index file (or a whole cluster "
                       "directory) for checksum and layout problems")
    verify.add_argument("index", help="index file written by 'repro build', "
                                      "or a cluster directory written by "
                                      "'repro partition' / 'repro rebalance'")
    verify.add_argument("--json", action="store_true",
                        help="print the integrity report as JSON")
    verify.add_argument("--key", default=None,
                        help="manifest signing key for cluster directories "
                             "(default: $REPRO_CLUSTER_KEY or a built-in "
                             "dev key)")
    verify.set_defaults(handler=_command_verify)

    partition = subparsers.add_parser(
        "partition", help="hash-partition an index file into cluster shards")
    partition.add_argument("index", help="index file written by 'repro build' "
                                         "(must carry a dictionary)")
    partition.add_argument("-o", "--output", required=True,
                           help="output cluster directory (shard containers "
                                "+ signed manifest.json)")
    partition.add_argument("--shards", type=int, required=True, metavar="K",
                           help="number of shards (subject-hash partitions)")
    partition.add_argument("--layout", default=None,
                           choices=("3t", "cc", "2tp", "2to"),
                           help="primary shard layout (default: the source "
                                "file's layout)")
    partition.add_argument("--replica-layout", default="2to",
                           choices=("3t", "cc", "2tp", "2to", "none"),
                           help="object-routed replica layout (default: 2to, "
                                "object-rooted; 'none' skips replicas)")
    partition.add_argument("--key", default=None,
                           help="manifest signing key (default: "
                                "$REPRO_CLUSTER_KEY or a built-in dev key)")
    partition.add_argument("--no-align", action="store_true",
                           help="write unaligned (v2) shard containers")
    partition.add_argument("--replicas", type=int, default=1, metavar="R",
                           help="serving processes per shard (R-way "
                                "replication over shared storage: replica 0 "
                                "is the writable leader, the rest read-only "
                                "WAL-tailing followers; default: 1)")
    partition.set_defaults(handler=_command_partition)

    rebalance = subparsers.add_parser(
        "rebalance",
        help="repartition a cluster directory to a new shard count")
    rebalance.add_argument("cluster", help="cluster directory written by "
                                           "'repro partition'")
    rebalance.add_argument("--shards", type=int, required=True, metavar="K",
                           help="new number of shards")
    rebalance.add_argument("--replicas", type=int, default=None, metavar="R",
                           help="new serving-process count per shard "
                                "(default: keep the manifest's)")
    rebalance.add_argument("--key", default=None,
                           help="manifest signing key (default: "
                                "$REPRO_CLUSTER_KEY or a built-in dev key)")
    rebalance.add_argument("--no-align", action="store_true",
                           help="write unaligned (v2) shard containers")
    rebalance.set_defaults(handler=_command_rebalance)

    shard = subparsers.add_parser(
        "shard", help="serve one cluster shard over the cluster RPC")
    shard.add_argument("cluster", help="cluster directory written by "
                                       "'repro partition'")
    shard.add_argument("--id", type=int, required=True,
                       help="shard id from the manifest")
    shard.add_argument("--replica", type=int, default=0, metavar="N",
                       help="replica index for this process (0 = writable "
                            "leader, >0 = read-only WAL-tailing follower "
                            "over the same containers; default: 0)")
    shard.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    shard.add_argument("--port", type=int, default=None,
                       help="TCP port (default: 8390 + shard id + "
                            "replica * K; 0 picks a free port)")
    shard.add_argument("--key", default=None,
                       help="manifest signing key (default: "
                            "$REPRO_CLUSTER_KEY or a built-in dev key)")
    shard.add_argument("--compact-ratio", type=float, default=0.25,
                       metavar="RATIO",
                       help="auto-compact when the shard delta exceeds "
                            "RATIO * base triples (default: 0.25; 0 "
                            "disables)")
    shard.add_argument("--mmap", action="store_true",
                       help="memory-map the shard containers")
    shard.set_defaults(handler=_command_shard)

    coordinator = subparsers.add_parser(
        "coordinator",
        help="serve scatter-gather HTTP queries over running shards")
    coordinator.add_argument("cluster", help="cluster directory written by "
                                             "'repro partition'")
    coordinator.add_argument("--shard", action="append", required=True,
                             metavar="HOST:PORT[,HOST:PORT...]",
                             help="one --shard flag per shard in manifest "
                                  "shard-id order; comma-separate that "
                                  "shard's replica endpoints, leader first")
    coordinator.add_argument("--host", default="127.0.0.1",
                             help="bind address (default: 127.0.0.1)")
    coordinator.add_argument("--port", type=int, default=8378,
                             help="TCP port (default: 8378; 0 picks a free "
                                  "port)")
    coordinator.add_argument("--key", default=None,
                             help="manifest signing key (default: "
                                  "$REPRO_CLUSTER_KEY or a built-in dev key)")
    coordinator.add_argument("--best-effort", action="store_true",
                             help="serve partial results (marked "
                                  "incomplete) when a shard is down instead "
                                  "of failing the request with 503")
    coordinator.add_argument("--timeout", type=float, default=30.0,
                             metavar="SECONDS",
                             help="default per-query wall-clock timeout "
                                  "(default: 30)")
    coordinator.add_argument("--max-limit", type=int, default=100_000,
                             metavar="N",
                             help="largest result page a request may ask "
                                  "for (default: 100000)")
    coordinator.add_argument("--engine", default="auto",
                             choices=("nested", "wcoj", "auto"),
                             help="default BGP executor (default: auto)")
    coordinator.add_argument("--quiet", action="store_true",
                             help="suppress per-request access logging")
    coordinator.add_argument("--log-format", default="text",
                             choices=("text", "json"),
                             help="structured log format for access lines "
                                  "(default: text)")
    coordinator.add_argument("--slow-log", default=None, metavar="PATH",
                             help="append a JSONL record (with the stitched "
                                  "cluster profile) for every query slower "
                                  "than --slow-ms to PATH")
    coordinator.add_argument("--slow-ms", type=float, default=500.0,
                             metavar="N",
                             help="slow-query threshold in milliseconds "
                                  "for --slow-log (default: 500)")
    coordinator.set_defaults(handler=_command_coordinator)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``repro query ... | head``); die
        # quietly like any Unix filter.  Redirect stdout to devnull so the
        # interpreter's shutdown flush cannot raise again.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
