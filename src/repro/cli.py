"""Command-line interface: build, query and inspect saved indexes.

The CLI makes the system operable end-to-end without writing Python::

    repro build data.nt -o data.ridx --layout 2tp
    repro info data.ridx
    repro query data.ridx --pattern '<http://example.org/alice> ? ?'
    repro query data.ridx --sparql 'SELECT ?o WHERE { 0 1 ?o }'

``build`` ingests an N-Triples file (or, with ``--ids``, whitespace-separated
integer triples), builds one of the paper's four layouts and persists it —
together with the string dictionaries when the input was N-Triples — into a
single checksummed container file.  ``query`` loads such a file in a fresh
process and answers triple selection patterns or SPARQL BGPs; ``info`` prints
the file's metadata, per-section sizes and space statistics.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.errors import ParseError, ReproError

#: Pattern-term tokens accepted by ``query --pattern``: a wildcard (``?`` or
#: ``?name``), an IRI, a literal with optional language tag or datatype, or a
#: plain integer ID.
_PATTERN_TOKEN_RE = re.compile(
    r"""\?[A-Za-z0-9_]*                                 # wildcard
      | <[^>]*>                                         # IRI
      | "(?:[^"\\]|\\.)*"(?:@[A-Za-z][A-Za-z0-9\-]*|\^\^<[^>]*>)?  # literal
      | \d+                                             # integer ID
      """,
    re.VERBOSE,
)


def _tokenize_pattern(text: str) -> List[str]:
    tokens = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _PATTERN_TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"cannot parse pattern term at {text[position:]!r}")
        tokens.append(match.group(0))
        position = match.end()
    return tokens


def _resolve_pattern(text: str, dictionary) -> Optional[Tuple[Optional[int], ...]]:
    """Turn ``--pattern 'S P O'`` into an ``(s, p, o)`` tuple of IDs/wildcards.

    Returns ``None`` when a constant term is absent from the dictionary — the
    pattern then provably matches nothing.
    """
    tokens = _tokenize_pattern(text)
    if len(tokens) != 3:
        raise ParseError(
            f"a pattern needs exactly 3 terms (subject predicate object), "
            f"got {len(tokens)}: {text!r}")
    components: List[Optional[int]] = []
    for role, token in enumerate(tokens):
        if token.startswith("?"):
            components.append(None)
        elif token.isdigit():
            components.append(int(token))
        else:
            if dictionary is None:
                raise ParseError(
                    f"term {token} needs a dictionary, but this index was "
                    f"built without one (--ids); use integer IDs")
            role_dictionary = (dictionary.subjects, dictionary.predicates,
                               dictionary.objects)[role]
            identifier = role_dictionary.get(token)
            if identifier is None:
                return None
            components.append(identifier)
    return tuple(components)


def _format_triple(triple: Tuple[int, int, int], dictionary) -> str:
    if dictionary is None:
        return "{} {} {}".format(*triple)
    s, p, o = dictionary.decode(triple)
    return f"{s} {p} {o} ."


# --------------------------------------------------------------------------- #
# build
# --------------------------------------------------------------------------- #

def _read_id_triples(path: str) -> List[Tuple[int, int, int]]:
    triples = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3 or not all(part.isdigit() for part in parts):
                raise ParseError(
                    f"{path}:{line_number}: expected three integer IDs, "
                    f"got {stripped!r}")
            triples.append((int(parts[0]), int(parts[1]), int(parts[2])))
    return triples


def _command_build(args: argparse.Namespace) -> int:
    from repro.core.builder import IndexBuilder
    from repro.queries.planner import QueryPlanner
    from repro.rdf.dictionary import RdfDictionary
    from repro.rdf.ntriples import parse_ntriples_file, term_triples_to_keys
    from repro.rdf.triples import TripleStore

    started = time.perf_counter()
    if args.ids:
        dictionary = None
        store = TripleStore.from_triples(_read_id_triples(args.input))
    else:
        term_triples = term_triples_to_keys(parse_ntriples_file(args.input))
        dictionary, store = RdfDictionary.from_term_triples(term_triples)
    parse_seconds = time.perf_counter() - started
    if len(store) == 0:
        print(f"error: {args.input} contains no triples", file=sys.stderr)
        return 1

    started = time.perf_counter()
    index = IndexBuilder(store).build(args.layout)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    planner_stats = (None if args.no_stats
                     else QueryPlanner.cardinalities_from_store(store))
    written = index.save(args.output, dictionary=dictionary,
                         planner_stats=planner_stats)
    save_seconds = time.perf_counter() - started

    print(f"indexed {len(store)} triples "
          f"({store.num_subjects} subjects, {store.num_predicates} predicates, "
          f"{store.num_objects} objects)")
    print(f"layout: {index.name}  ({index.bits_per_triple():.2f} bits/triple in memory)")
    print(f"wrote {args.output}: {written} bytes "
          f"({written * 8 / len(store):.2f} bits/triple on disk)")
    print(f"timings: parse {parse_seconds:.3f}s, build {build_seconds:.3f}s, "
          f"save {save_seconds:.3f}s")
    return 0


# --------------------------------------------------------------------------- #
# query
# --------------------------------------------------------------------------- #

def _run_pattern_query(index, dictionary, args: argparse.Namespace) -> int:
    pattern = _resolve_pattern(args.pattern, dictionary)
    # Stream: only --json needs the triples materialised; --count and the
    # plain listing must stay O(1) in memory on huge result sets.
    matched = 0
    collected = [] if args.json else None
    if pattern is not None and (args.limit is None or args.limit > 0):
        for triple in index.select(pattern):
            matched += 1
            if collected is not None:
                collected.append(triple)
            elif not args.count:
                print(_format_triple(triple, dictionary))
            if args.limit is not None and matched >= args.limit:
                break
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(jsonio.pattern_results_to_json(
            collected, dictionary=dictionary)))
    elif args.count:
        print(matched)
    else:
        print(f"{matched} matching triples", file=sys.stderr)
    return 0


def _run_sparql_query(index, dictionary, text: str, args: argparse.Namespace,
                      cardinalities=None) -> int:
    from repro.queries.planner import execute_bgp
    from repro.queries.sparql import parse_sparql

    query = parse_sparql(text, dictionary=dictionary)
    engine = getattr(args, "engine", None) or "auto"
    results, statistics = execute_bgp(index, query, max_results=args.limit,
                                      cardinalities=cardinalities,
                                      engine=engine)
    variables = list(query.projection or query.variables())
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(jsonio.sparql_results_to_json(
            variables, results, statistics)))
        return 0
    if args.count:
        print(len(results))
        return 0
    print("\t".join(variables))
    for binding in results:
        print("\t".join(str(binding.get(variable, "")) for variable in variables))
    print(f"{len(results)} solutions, {statistics.patterns_executed} atomic "
          f"patterns executed ({statistics.engine} engine)", file=sys.stderr)
    return 0


def _command_query(args: argparse.Namespace) -> int:
    from repro.storage import load_index

    if args.pattern is not None and args.engine is not None:
        # Mirror the HTTP endpoint: the executor knob has no meaning for a
        # single selection pattern, so reject it instead of ignoring it.
        print("error: --engine only applies to SPARQL queries, not --pattern",
              file=sys.stderr)
        return 2
    loaded = load_index(args.index)
    if args.pattern is not None:
        return _run_pattern_query(loaded.index, loaded.dictionary, args)
    if args.sparql is not None:
        return _run_sparql_query(loaded.index, loaded.dictionary, args.sparql,
                                 args, cardinalities=loaded.planner_stats)
    with open(args.sparql_file, "r", encoding="utf-8") as handle:
        return _run_sparql_query(loaded.index, loaded.dictionary, handle.read(),
                                 args, cardinalities=loaded.planner_stats)


# --------------------------------------------------------------------------- #
# info
# --------------------------------------------------------------------------- #

def _command_info(args: argparse.Namespace) -> int:
    from repro.storage import file_info

    info = file_info(args.index, include_breakdown=args.breakdown)
    if args.json:
        from repro.service import jsonio
        print(jsonio.dumps(jsonio.info_to_json(info)))
        return 0
    meta = info["meta"]
    print(f"file: {info['path']}")
    print(f"container format version: {info['format_version']}")
    print(f"written by repro version: {meta.get('library_version', '?')}")
    print(f"layout: {meta.get('layout', '?')}")
    num_triples = meta.get("num_triples", 0)
    print(f"triples: {num_triples}")
    print(f"dictionary bundled: {'yes' if meta.get('has_dictionary') else 'no'}")
    total = info["total_bytes"]
    print(f"file size: {total} bytes")
    if num_triples:
        print(f"on-disk bits/triple: {total * 8 / num_triples:.2f}")
        size_in_bits = meta.get("size_in_bits")
        if size_in_bits:
            print(f"in-memory bits/triple: {size_in_bits / num_triples:.2f}")
    print("sections:")
    for name, size in sorted(info["section_bytes"].items()):
        print(f"    {name:<12} {size} bytes")
    if args.breakdown:
        print("space breakdown (bits, in memory):")
        for component, bits in info["space_breakdown"].items():
            print(f"    {component:<18} {bits}")
    return 0


# --------------------------------------------------------------------------- #
# serve
# --------------------------------------------------------------------------- #

def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import QueryService, build_server

    started = time.perf_counter()
    service = QueryService.from_file(
        args.index,
        plan_cache_size=args.plan_cache,
        result_cache_size=args.result_cache,
        default_timeout=args.timeout,
        max_limit=args.max_limit,
        engine=args.engine)
    load_seconds = time.perf_counter() - started
    server = build_server(service, host=args.host, port=args.port,
                          quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"loaded {args.index} in {load_seconds:.3f}s "
          f"({service.index.num_triples} triples, layout "
          f"{getattr(service.index, 'name', '?')})")
    print(f"serving on http://{host}:{port}  "
          f"(POST /query, GET /stats, GET /healthz; Ctrl-C to stop)",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


# --------------------------------------------------------------------------- #
# Argument parsing.
# --------------------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compressed RDF triple indexes: build, query and inspect "
                    "persisted index files.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser(
        "build", help="index an N-Triples file and save it")
    build.add_argument("input", help="input file (N-Triples, or integer "
                                     "triples with --ids)")
    build.add_argument("-o", "--output", required=True,
                       help="output index file path")
    build.add_argument("--layout", default="2tp",
                       choices=("3t", "cc", "2tp", "2to"),
                       help="index layout (default: 2tp, the paper's pick)")
    build.add_argument("--ids", action="store_true",
                       help="input lines are 's p o' integer IDs; no "
                            "dictionary is built")
    build.add_argument("--no-stats", action="store_true",
                       help="skip bundling the planner's cardinality "
                            "histograms into the output file")
    build.set_defaults(handler=_command_build)

    query = subparsers.add_parser(
        "query", help="run a triple pattern or SPARQL BGP against a saved index")
    query.add_argument("index", help="index file written by 'repro build'")
    what = query.add_mutually_exclusive_group(required=True)
    what.add_argument("--pattern",
                      help="triple pattern, e.g. '<iri> ? ?' or '1 ? 4' "
                           "(? is a wildcard)")
    what.add_argument("--sparql", help="SPARQL SELECT query text")
    what.add_argument("--sparql-file", help="file containing a SPARQL query")
    query.add_argument("--count", action="store_true",
                       help="print only the number of results")
    query.add_argument("--limit", type=int, default=None,
                       help="stop after this many results")
    query.add_argument("--json", action="store_true",
                       help="print results as JSON (same shape as the "
                            "serve endpoint)")
    # Kept as literals (mirroring repro.queries.ENGINES) so building the
    # parser stays import-light; the library layer re-validates anyway.
    # Default None = "auto", distinguished so --pattern can reject an
    # explicit --engine the way the HTTP endpoint does.
    query.add_argument("--engine", default=None,
                       choices=("nested", "wcoj", "auto"),
                       help="BGP executor (SPARQL only): nested-loop "
                            "pipeline, leapfrog worst-case-optimal multiway "
                            "join, or auto (default: auto picks wcoj for "
                            "cyclic/multi-join BGPs)")
    query.set_defaults(handler=_command_query)

    info = subparsers.add_parser(
        "info", help="print size and statistics of a saved index")
    info.add_argument("index", help="index file written by 'repro build'")
    info.add_argument("--breakdown", action="store_true",
                      help="also load the index and print its per-component "
                           "space breakdown")
    info.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    info.set_defaults(handler=_command_info)

    serve = subparsers.add_parser(
        "serve", help="load an index once and serve HTTP queries from it")
    serve.add_argument("index", help="index file written by 'repro build'")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8377,
                       help="TCP port (default: 8377; 0 picks a free port)")
    serve.add_argument("--plan-cache", type=int, default=256, metavar="N",
                       help="plan cache entries (default: 256)")
    serve.add_argument("--result-cache", type=int, default=256, metavar="N",
                       help="result cache entries (default: 256; 0 disables)")
    serve.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                       help="default per-query wall-clock timeout "
                            "(default: 30)")
    serve.add_argument("--max-limit", type=int, default=100_000, metavar="N",
                       help="largest result page a request may ask for "
                            "(default: 100000)")
    serve.add_argument("--engine", default="auto",
                       choices=("nested", "wcoj", "auto"),
                       help="default BGP executor for requests that do not "
                            "choose one (default: auto)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    serve.set_defaults(handler=_command_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``repro query ... | head``); die
        # quietly like any Unix filter.  Redirect stdout to devnull so the
        # interpreter's shutdown flush cannot raise again.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
