"""The pre-fork worker pool behind ``repro serve --workers N``.

One box, many cores, one index.  The GIL caps a single
:class:`~repro.service.http.QueryServiceServer` at one CPU, but the
compressed tries are immutable and (since the v3 aligned container)
mmap-loadable — the classic HDT/RDF-3X serving shape applies: page-share
one read-only index across processes and let the kernel do the fan-out.

Process model::

    master ──────────── binds the listening socket, forks, supervises
      ├─ writer         owns the DynamicIndex + WAL; applies every write,
      │                 publishes an epoch document after each one
      └─ worker × N     mmap the index read-only, accept() on the shared
                        listener, answer queries; follow the writer's
                        epochs; proxy /update & /compact to the writer

* **Sockets.**  The master binds and listens once; every worker inherits
  the socket through ``fork`` and calls ``accept`` on it, so the kernel
  load-balances connections across workers and a worker crash never loses
  the listening queue.  ``SO_REUSEPORT`` is additionally set where the
  platform offers it, so an operator can co-bind a second pool on the
  same port for a blue-green handover.
* **Writes.**  Workers never mutate anything.  ``POST /update`` and
  ``POST /compact`` are framed as JSON over a unix domain socket to the
  single writer process, which applies them through the ordinary
  :class:`~repro.service.engine.QueryService` write path (WAL first, then
  visible), *publishes* the new epoch, and only then acknowledges — so an
  acknowledged write is durable and observable from every worker.
* **Epochs.**  Publication is a tiny atomically-replaced JSON document
  (see :mod:`repro.dynamic.follower`).  Workers run an
  :class:`~repro.dynamic.EpochFollower` and refresh at the start of every
  request: one ``stat`` when nothing changed, a WAL tail replay when
  something did, a container re-map when a compaction landed.
* **Supervision.**  The master reaps children; a crashed worker (or
  writer) is respawned into the same metrics slot, a SIGTERM drains:
  workers stop accepting, finish their in-flight requests, then the
  writer flushes and exits, then the master closes the listener.

Metrics are aggregated across processes through one pre-fork shared
memory block (:mod:`repro.service.metrics`) — any worker can answer
``GET /metrics`` for the whole pool.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import time
import traceback
from typing import Dict, Optional, Tuple

from repro.cluster.rpc import (
    FRAME as _FRAME,
    MAX_FRAME_BYTES,
    read_frame as _read_frame,
    recv_exactly as _recv_exactly,
    send_frame as _send_frame,
)
from repro.dynamic.follower import (
    EpochFollower,
    read_epoch_document,
    write_epoch_document,
)
from repro.obs import get_logger
from repro.service.engine import QueryService
from repro.service.http import (
    AdmissionControl,
    QueryServiceServer,
    TokenBucketLimiter,
    error_body,
    status_for_error,
)
from repro.service.metrics import MetricsBlock

__all__ = ["ServerPool", "WriterClient", "MAX_FRAME_BYTES"]

#: How long a worker waits for (re)connecting to the writer socket.
_WRITER_CONNECT_TIMEOUT = 5.0
#: Per-request writer timeout — compactions rebuild the index, so this is
#: generous; queries never wait on it.
_WRITER_REPLY_TIMEOUT = 600.0


class WriterClient:
    """A worker's connection to the writer process (lazy, self-healing).

    One request/reply in flight at a time per worker (serialised on a
    lock); a broken connection is retried once — the writer may have just
    been respawned.  An unreachable writer is reported as a 503 body, not
    an exception: queries must keep flowing while writes shed.
    """

    def __init__(self, path):
        self._path = str(path)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(_WRITER_CONNECT_TIMEOUT)
        sock.connect(self._path)
        sock.settimeout(_WRITER_REPLY_TIMEOUT)
        return sock

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None

    def request(self, message: dict) -> Tuple[int, dict]:
        """Send one operation; returns ``(http_status, json_body)``."""
        payload = json.dumps(message).encode("utf-8")
        with self._lock:
            last_error: Optional[Exception] = None
            for _ in range(2):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    _send_frame(self._sock, payload)
                    reply = _read_frame(self._sock)
                    if reply is None:
                        raise ConnectionError("writer closed the connection")
                    response = json.loads(reply.decode("utf-8"))
                    return (int(response.get("status", 500)),
                            response.get("body", {}))
                except (OSError, ValueError, ConnectionError) as exc:
                    last_error = exc
                    if self._sock is not None:
                        try:
                            self._sock.close()
                        finally:
                            self._sock = None
        return 503, {"error": {
            "type": "WriterUnavailable",
            "message": f"the writer process is unreachable "
                       f"({last_error}); retry later"}}


class _WriterProcess:
    """The single mutating process: applies writes, publishes epochs."""

    def __init__(self, pool: "ServerPool"):
        self._pool = pool
        self._stop = threading.Event()
        self._lock = threading.Lock()  # serialises apply + publish + ack
        self._service: Optional[QueryService] = None
        self._generation = 0
        self._epoch_offset = 0

    def run(self) -> int:
        pool = self._pool
        signal.signal(signal.SIGTERM, lambda *_: self._stop.set())
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        self._service = QueryService.from_file(
            pool.index_path, writable=True, wal_path=pool.wal_path,
            compaction_ratio=pool.compaction_ratio, mmap=pool.mmap,
            **pool.service_options)
        previous = read_epoch_document(pool.epoch_path)
        if previous is not None:
            # Continue the published history instead of restarting it: the
            # replayed index is byte-for-byte the acknowledged state, so
            # generation is unchanged and epochs resume monotonically.
            self._generation = int(previous.get("generation", 0))
            self._epoch_offset = int(previous.get("epoch", 0))
        self._publish()
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            os.unlink(pool.writer_socket_path)
        except OSError:
            pass
        server.bind(pool.writer_socket_path)
        server.listen(pool.workers + 8)
        server.settimeout(0.5)
        threads = []
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True)
                thread.start()
                threads.append(thread)
        finally:
            server.close()
            for thread in threads:
                thread.join(timeout=2.0)
            # Flush-on-shutdown: the WAL handle is fsync-per-append, so
            # closing is about releasing the descriptor cleanly.
            closer = getattr(self._service, "close", None)
            if closer is not None:
                closer()
        return 0

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    frame = _read_frame(conn)
                except (OSError, ConnectionError):
                    return
                if frame is None:
                    return
                try:
                    message = json.loads(frame.decode("utf-8"))
                    status, body = self._handle(message)
                except Exception as error:  # noqa: BLE001 - reply, don't die
                    status, body = status_for_error(error), error_body(error)
                try:
                    _send_frame(conn, json.dumps(
                        {"status": status, "body": body}).encode("utf-8"))
                except OSError:
                    return

    def _handle(self, message: dict) -> Tuple[int, dict]:
        operation = message.get("op")
        service = self._service
        with self._lock:
            if operation == "ping":
                return 200, {"status": "ok", "pid": os.getpid()}
            if operation == "update":
                inserts = [tuple(t) for t in message.get("insert", [])]
                deletes = [tuple(t) for t in message.get("delete", [])]
                result = service.update(inserts=inserts, deletes=deletes)
                if (result.compaction is not None
                        and result.compaction.compacted):
                    self._note_compaction()
                # Publish *before* acknowledging: once the client sees 200
                # the write is durable in the WAL and visible to any worker
                # that refreshes — the no-lost-acknowledged-writes contract
                # the chaos test leans on.
                self._publish()
                return 200, result.to_json()
            if operation == "compact":
                result = service.compact()
                if result.compacted:
                    self._note_compaction()
                self._publish()
                return 200, result.to_json()
        return 400, {"error": {"type": "BadRequest",
                               "message": f"unknown writer op {operation!r}"}}

    def _note_compaction(self) -> None:
        # Only a *persisted* compaction re-points the container file and
        # resets the WAL; bumping the generation then tells workers to
        # re-map.  If the persist failed the WAL still holds the full
        # history and workers' merged views remain correct as they are.
        if getattr(self._service, "_persist_error", None) is None:
            self._generation += 1

    def _publish(self) -> None:
        index = self._service.index
        stats = index.delta_statistics()
        write_epoch_document(self._pool.epoch_path, {
            "generation": self._generation,
            "epoch": self._epoch_offset + int(stats.get("epoch", 0)),
            "wal": str(self._pool.wal_path),
            "wal_records": int(stats.get("wal_records", 0)),
            "pid": os.getpid(),
        })


class ServerPool:
    """Master of the pre-fork pool: bind, fork, supervise, drain.

    ``run()`` blocks until SIGTERM/SIGINT and returns a process exit
    code.  ``service_options`` are forwarded to every per-process
    :class:`~repro.service.engine.QueryService` (engine, default timeout,
    cache sizes, page cap).
    """

    def __init__(self, index_path, workers: int = 2,
                 host: str = "127.0.0.1", port: int = 8377,
                 writable: bool = False, wal_path=None,
                 compaction_ratio: Optional[float] = None,
                 mmap: bool = True, quiet: bool = False,
                 max_inflight: int = 64, rate_limit: float = 0.0,
                 rate_burst: Optional[float] = None,
                 drain_timeout: float = 10.0,
                 service_options: Optional[dict] = None,
                 log_format: str = "text"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if writable and wal_path is None:
            # The WAL doubles as the write-publication bus, so a writable
            # pool always has one (single-process serve keeps it optional).
            wal_path = str(index_path) + ".wal"
        self.index_path = index_path
        self.workers = workers
        self.host = host
        self.port = port
        self.writable = writable
        self.wal_path = wal_path
        self.compaction_ratio = compaction_ratio
        self.mmap = mmap
        self.quiet = quiet
        self.max_inflight = max_inflight
        self.rate_limit = rate_limit
        self.rate_burst = rate_burst
        self.drain_timeout = drain_timeout
        self.service_options = dict(service_options or {})
        self.log_format = log_format
        self.epoch_path = (str(wal_path) + ".epoch") if wal_path else None
        self.writer_socket_path = (str(wal_path) + ".sock") if wal_path \
            else None
        self._listener: Optional[socket.socket] = None
        self._block: Optional[MetricsBlock] = None
        #: pid → ("worker", slot) or ("writer", None)
        self._children: Dict[int, Tuple[str, Optional[int]]] = {}
        self._stopping = False

    # ------------------------------------------------------------------ #
    # Master.
    # ------------------------------------------------------------------ #

    def _bind_listener(self) -> socket.socket:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):
            try:
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except OSError:  # pragma: no cover - platform quirk
                pass
        listener.bind((self.host, self.port))
        listener.listen(1024)
        self.port = listener.getsockname()[1]
        return listener

    def _log(self, message: str) -> None:
        if not self.quiet:
            get_logger("pool", self.log_format).info(
                "supervise", message=message, pid=os.getpid())

    def run(self) -> int:
        """Run the pool until SIGTERM/SIGINT; returns an exit code."""
        self._listener = self._bind_listener()
        self._block = MetricsBlock(self.workers)
        signal.signal(signal.SIGTERM, self._request_stop)
        signal.signal(signal.SIGINT, self._request_stop)
        if self.writable:
            self._spawn_writer()
            self._await_writer()
        print(f"serving on http://{self.host}:{self.port} "
              f"(pid {os.getpid()}, workers {self.workers}"
              f"{', writable' if self.writable else ''})", flush=True)
        for slot in range(self.workers):
            self._spawn_worker(slot)
        self._supervise()
        self._drain()
        return 0

    def _request_stop(self, *_args) -> None:
        self._stopping = True

    def _fork(self, target, role: Tuple[str, Optional[int]]) -> int:
        pid = os.fork()
        if pid != 0:
            self._children[pid] = role
            return pid
        # Child: never return into the master's stack.
        code = 1
        try:
            code = target() or 0
        except SystemExit as exit_:  # pragma: no cover - child plumbing
            code = exit_.code if isinstance(exit_.code, int) else 0
        except BaseException:  # noqa: BLE001 - child must report and die
            traceback.print_exc()
            code = 1
        finally:
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(code)

    def _spawn_writer(self) -> int:
        return self._fork(lambda: _WriterProcess(self).run(),
                          ("writer", None))

    def _spawn_worker(self, slot: int) -> int:
        pid = self._fork(lambda: self._worker_main(slot), ("worker", slot))
        self._block.master().add("workers")
        return pid

    def _await_writer(self, timeout: float = 60.0) -> None:
        """Block until the writer has published and answers pings."""
        client = WriterClient(self.writer_socket_path)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if read_epoch_document(self.epoch_path) is not None:
                status, _ = client.request({"op": "ping"})
                if status == 200:
                    client.close()
                    return
            if self._reap_one():
                break  # the writer died on startup: surface it below
            time.sleep(0.05)
        client.close()
        raise RuntimeError(
            f"writer process did not become ready within {timeout:.0f}s "
            f"(index {self.index_path}, wal {self.wal_path})")

    def _reap_one(self) -> Optional[int]:
        try:
            pid, _status = os.waitpid(-1, os.WNOHANG)
        except ChildProcessError:
            return None
        return pid or None

    def _supervise(self) -> None:
        master = self._block.master()
        while not self._stopping:
            pid = self._reap_one()
            if pid is None:
                time.sleep(0.1)
                continue
            role = self._children.pop(pid, None)
            if role is None or self._stopping:
                continue
            kind, slot = role
            master.add("restarts")
            self._log(f"[pool] {kind} {pid} exited unexpectedly; respawning")
            if kind == "writer":
                self._spawn_writer()
            else:
                master.sub("workers")
                self._spawn_worker(slot)

    def _alive(self, kind: str) -> Dict[int, Tuple[str, Optional[int]]]:
        return {pid: role for pid, role in self._children.items()
                if role[0] == kind}

    def _terminate(self, pids, grace: float) -> None:
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                self._children.pop(pid, None)
        deadline = time.monotonic() + grace
        while (any(pid in self._children for pid in pids)
               and time.monotonic() < deadline):
            pid = self._reap_one()
            if pid:
                self._children.pop(pid, None)
            else:
                time.sleep(0.05)
        for pid in pids:
            if pid in self._children:  # drain timeout: stop waiting nicely
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                try:
                    os.waitpid(pid, 0)
                except (ChildProcessError, OSError):
                    pass
                self._children.pop(pid, None)

    def _drain(self) -> None:
        """Orderly shutdown: workers first (they finish in-flight requests),
        then the writer (no more writes can arrive), then the listener."""
        self._log("[pool] draining workers")
        self._terminate(list(self._alive("worker")), grace=self.drain_timeout)
        self._block.master().set("workers", 0)
        self._terminate(list(self._alive("writer")), grace=self.drain_timeout)
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # ------------------------------------------------------------------ #
    # Worker.
    # ------------------------------------------------------------------ #

    def _worker_main(self, slot: int) -> int:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        metrics = self._block.worker(slot)
        # A predecessor killed mid-request leaves its gauge high forever.
        metrics.set("inflight", 0)
        refresh = None
        proxy = None
        health_extra = None
        if self.writable:
            follower = EpochFollower(self.index_path, self.epoch_path,
                                     mmap=self.mmap)
            service = QueryService(
                follower, dictionary=follower.dictionary,
                cardinalities=follower.planner_stats, meta=follower.meta,
                writable=False, **self.service_options)
            refresh = follower.refresh
            proxy = WriterClient(self.writer_socket_path)

            def health_extra(follower=follower):
                return {"combined_epoch": follower.combined_epoch,
                        "wal_lag": follower.wal_lag(),
                        "generation": follower.generation}
        else:
            service = QueryService.from_file(
                self.index_path, writable=False, mmap=self.mmap,
                **self.service_options)
        limiter = (TokenBucketLimiter(self.rate_limit, self.rate_burst)
                   if self.rate_limit and self.rate_limit > 0 else None)
        server = QueryServiceServer(
            (self.host, self.port), service, quiet=self.quiet,
            listen_socket=self._listener,
            admission=AdmissionControl(self.max_inflight),
            rate_limiter=limiter, metrics=metrics, metrics_block=self._block,
            refresh_index=refresh, update_proxy=proxy,
            health_extra=health_extra,
            drain=True, handler_timeout=5.0,
            log_format=self.log_format, subsystem="pool")

        def _graceful(*_args):
            # shutdown() blocks until serve_forever exits, and the handler
            # runs *on* the serve_forever thread — hand it to a helper.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _graceful)
        server.serve_forever(poll_interval=0.1)
        server.server_close()  # joins in-flight handler threads
        if proxy is not None:
            proxy.close()
        closer = getattr(service, "close", None)
        if closer is not None:
            closer()
        return 0
