"""A threaded HTTP front-end for :class:`repro.service.engine.QueryService`.

Stdlib only (``http.server``): a :class:`ThreadingHTTPServer` dispatches each
request to its own thread, all of them sharing one read-only index through
the service — the shape the paper's immutable compressed tries are built for.
For multi-core serving, :mod:`repro.service.pool` forks several of these
servers over one inherited listening socket; everything in this module is
per-process and needs no coordination beyond the optional shared metrics
slot it is handed.

Endpoints:

* ``POST /query`` — body is a JSON object with either ``"sparql"`` (query
  text) or ``"pattern"`` (three terms, ``null`` = wildcard), plus optional
  ``"limit"``, ``"offset"``, ``"timeout"``, ``"cache"``, ``"engine"``
  (SPARQL only: ``"nested"``, ``"wcoj"`` or ``"auto"``) and — for patterns
  with a bundled dictionary — ``"decode"``.  A ``"batch"`` key with a list
  of such objects answers many queries in one round trip; failed entries
  carry an ``"error"`` object instead of killing the whole batch.
* ``POST /update`` — body is ``{"insert": [[s, p, o], ...]}`` and/or
  ``{"delete": [...]}`` (integer ID triples).  Requires a writable service
  (``repro serve --writable``); responds with the applied counts and the
  new index epoch, plus the compaction report if the batch tripped the
  size-ratio trigger.  Under the pre-fork pool the batch is proxied to the
  single writer process and acknowledged only once durable and published.
* ``POST /compact`` — fold the in-memory delta into a freshly built
  index; responds with the compaction report (a no-op when the delta is
  empty).
* ``GET /stats`` — cache hit rates, latency percentiles, index sizes,
  delta/epoch gauges.
* ``GET /metrics`` — Prometheus text exposition (see
  :mod:`repro.service.metrics`), aggregated across workers under the pool.
* ``GET /healthz`` — liveness probe; reports the answering process's pid
  and index epoch.

Failures are structured: every error response is
``{"error": {"type": ..., "message": ...}}`` with the HTTP status mapped
from the :mod:`repro.errors` hierarchy (bad input 400, timeout 408,
storage trouble 500).  Load shedding is explicit: a full admission gate
answers 503, an exhausted per-client token bucket answers 429, both with
``Retry-After``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    DictionaryError,
    ParseError,
    PatternError,
    QueryTimeoutError,
    ReproError,
    ServiceError,
    ShardUnavailableError,
    StorageError,
    UpdateError,
)
from repro.obs import decode_trace_context, get_logger, new_trace_id
from repro.service.engine import QueryService
from repro.service.jsonio import pattern_result_to_json, query_result_to_json

#: ``repro.errors`` to HTTP status; first match wins (order matters:
#: subclasses before :class:`ReproError`).
_STATUS_BY_ERROR: Tuple[Tuple[type, int], ...] = (
    (ParseError, 400),
    (PatternError, 400),
    (DictionaryError, 400),
    (UpdateError, 400),
    (ServiceError, 400),
    (QueryTimeoutError, 408),
    (ShardUnavailableError, 503),
    (StorageError, 500),
    (ReproError, 400),
)


#: Largest request body accepted (a SPARQL BGP or a batch of them fits in
#: far less); bigger declared bodies are rejected with 413 before reading.
MAX_BODY_BYTES = 4 * 1024 * 1024


def status_for_error(error: Exception) -> int:
    """The HTTP status code a failure maps to (500 for non-repro errors)."""
    for error_type, status in _STATUS_BY_ERROR:
        if isinstance(error, error_type):
            return status
    return 500


def error_body(error: Exception) -> Dict[str, Any]:
    """The structured JSON body describing ``error``."""
    return {"error": {"type": type(error).__name__, "message": str(error)}}


class AdmissionControl:
    """A bounded in-flight gate: at most ``max_inflight`` requests execute.

    Load shedding beats queueing for an interactive query endpoint: once
    every executor slot is busy, a new request would only wait behind work
    it cannot speed up, so the server answers 503 + ``Retry-After``
    immediately and the client (or its load balancer) retries elsewhere.
    """

    def __init__(self, max_inflight: int):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def try_acquire(self) -> bool:
        with self._lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)


class TokenBucketLimiter:
    """Per-client token buckets: ``rate`` requests/second, ``burst`` deep.

    Keyed by client IP.  Buckets refill lazily on access; idle full
    buckets are pruned so the table cannot grow without bound under an
    address scan.
    """

    #: Prune sweep threshold — far above any honest client population.
    MAX_CLIENTS = 8192

    def __init__(self, rate: float, burst: Optional[float] = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 requests/second, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst else max(1.0, 2 * self.rate)
        self._lock = threading.Lock()
        self._buckets: Dict[str, Tuple[float, float]] = {}

    def allow(self, client: str) -> bool:
        now = time.monotonic()
        with self._lock:
            tokens, last = self._buckets.get(client, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            allowed = tokens >= 1.0
            if allowed:
                tokens -= 1.0
            self._buckets[client] = (tokens, now)
            if len(self._buckets) > self.MAX_CLIENTS:
                self._prune(now)
            return allowed

    def _prune(self, now: float) -> None:
        refilled = {
            client for client, (tokens, last) in self._buckets.items()
            if tokens + (now - last) * self.rate >= self.burst}
        for client in refilled:
            del self._buckets[client]


def _validate_page_options(limit, offset, timeout) -> None:
    """Reject malformed paging/deadline fields before they reach a join.

    ``bool`` is an ``int`` subclass in Python, so ``true``/``false`` would
    otherwise sail through the integer checks and mean 1/0 downstream.
    """
    if limit is not None:
        if isinstance(limit, bool) or not isinstance(limit, int):
            raise ServiceError("limit must be an integer")
        if limit < 0:
            raise ServiceError(f"limit must be >= 0, got {limit}")
    if isinstance(offset, bool) or not isinstance(offset, int):
        raise ServiceError("offset must be an integer")
    if offset < 0:
        raise ServiceError(f"offset must be >= 0, got {offset}")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ServiceError("timeout must be a number (seconds)")
        if timeout <= 0:
            raise ServiceError(
                f"timeout must be > 0 seconds, got {timeout}")


def _observe_result(metrics, result) -> None:
    """Feed one answered query's stage times and engine counters into the
    shared metrics slot (``parse`` folds into the plan histogram)."""
    stages = getattr(result, "stages", None) or {}
    metrics.observe_stage(
        "plan", stages.get("parse", 0.0) + stages.get("plan", 0.0))
    metrics.observe_stage("execute", stages.get("execute", 0.0))
    summary = getattr(result, "statistics", None) or {}
    engine = summary.get("engine")
    if engine in ("nested", "wcoj"):
        seeks = int(summary.get("seeks", 0) or 0)
        blocks = int(summary.get("blocks_decoded", 0) or 0)
        if seeks:
            metrics.add(f"{engine}_seeks", seeks)
        if blocks:
            metrics.add(f"{engine}_blocks", blocks)


def _run_one(service: QueryService, request: Dict[str, Any],
             metrics=None, trace: Optional[Dict[str, str]] = None
             ) -> Dict[str, Any]:
    """Execute one request object against ``service`` and serialise it."""
    if not isinstance(request, dict):
        raise ServiceError("each query must be a JSON object")
    unknown = set(request) - {"sparql", "pattern", "limit", "offset",
                              "timeout", "cache", "decode", "engine",
                              "profile"}
    if unknown:
        raise ServiceError(f"unknown request field(s): {sorted(unknown)}")
    limit = request.get("limit")
    offset = request.get("offset", 0)
    timeout = request.get("timeout")
    use_cache = bool(request.get("cache", True))
    engine = request.get("engine")
    profile = request.get("profile", False)
    if not isinstance(profile, bool):
        raise ServiceError("'profile' must be a boolean")
    _validate_page_options(limit, offset, timeout)
    if engine is not None and engine not in QueryService.ENGINES:
        raise ServiceError(
            f"unknown engine {engine!r}; expected one of "
            f"{list(QueryService.ENGINES)}")

    if "sparql" in request:
        text = request["sparql"]
        if not isinstance(text, str):
            raise ServiceError("'sparql' must be a string")
        result = service.execute(text, limit=limit, offset=offset,
                                 timeout=timeout, use_cache=use_cache,
                                 engine=engine, profile=profile, trace=trace)
        if metrics is None:
            return query_result_to_json(result)
        _observe_result(metrics, result)
        stamp = time.perf_counter()
        body = query_result_to_json(result)
        metrics.observe_stage("serialize", time.perf_counter() - stamp)
        return body
    if engine is not None:
        raise ServiceError("'engine' only applies to SPARQL queries")
    if profile:
        raise ServiceError("'profile' only applies to SPARQL queries")
    if "pattern" in request:
        pattern = request["pattern"]
        if (not isinstance(pattern, (list, tuple)) or len(pattern) != 3 or
                not all(term is None or isinstance(term, int)
                        for term in pattern)):
            raise ServiceError(
                "'pattern' must be a list of 3 terms, each an integer ID "
                "or null for a wildcard")
        result = service.select(pattern, limit=limit, offset=offset,
                                use_cache=use_cache)
        dictionary = service.dictionary if request.get("decode") else None
        return pattern_result_to_json(result, dictionary=dictionary)
    raise ServiceError("a query needs either a 'sparql' or a 'pattern' field")


def _parse_triples(value: Any, field: str) -> list:
    """Check the JSON *shape* of one ``insert``/``delete`` triple list.

    Only structure is validated here; the component rules (integers,
    non-negative, int64-bounded) live in one place —
    :func:`repro.dynamic.delta.normalize_triple`, reached through
    ``service.update`` — so the two layers cannot drift apart.  Both error
    types map to HTTP 400.
    """
    if not isinstance(value, list):
        raise ServiceError(f"'{field}' must be a list of [s, p, o] triples")
    triples = []
    for entry in value:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise ServiceError(
                f"each '{field}' entry must be a list of 3 integer IDs, "
                f"got {entry!r}")
        triples.append(tuple(entry))
    return triples


def _validate_update(request: Dict[str, Any]) -> Tuple[list, list]:
    """Shape-check one ``POST /update`` body; returns ``(inserts, deletes)``."""
    unknown = set(request) - {"insert", "delete"}
    if unknown:
        raise ServiceError(f"unknown update field(s): {sorted(unknown)}")
    inserts = _parse_triples(request["insert"], "insert") \
        if "insert" in request else []
    deletes = _parse_triples(request["delete"], "delete") \
        if "delete" in request else []
    if not inserts and not deletes:
        raise ServiceError(
            "an update needs an 'insert' and/or a 'delete' list")
    return inserts, deletes


def _run_update(service: QueryService, request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one ``POST /update`` body against ``service``."""
    inserts, deletes = _validate_update(request)
    # One atomic batch: a failure anywhere applies nothing, and readers
    # never observe the inserts without the deletes.
    result = service.update(inserts=inserts, deletes=deletes)
    return result.to_json()


class QueryServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the shared :class:`QueryService`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        timeout = getattr(self.server, "handler_timeout", None)
        if timeout is not None:
            # Bounds an idle keep-alive read so a draining worker's
            # server_close() cannot block forever on a silent client.
            self.timeout = timeout
        super().setup()

    def log_request(self, code="-", size="-") -> None:
        """One structured access-log line per response (replaces the
        ad-hoc ``BaseHTTPRequestHandler`` Common Log Format line)."""
        if getattr(self.server, "quiet", False):
            return
        logger = getattr(self.server, "access_logger", None)
        if logger is None:  # embedding API built the server directly
            BaseHTTPRequestHandler.log_request(self, code, size)
            return
        status = getattr(code, "value", code)
        logger.info("access", client=self.address_string(),
                    method=getattr(self, "command", None),
                    path=getattr(self, "path", None), status=status,
                    trace_id=getattr(self, "_trace_id", None))

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "quiet", False):
            return
        logger = getattr(self.server, "access_logger", None)
        if logger is None:
            BaseHTTPRequestHandler.log_message(self, format, *args)
            return
        logger.warning("http", client=self.address_string(),
                       message=format % args)

    def _send_json(self, status: int, body: Dict[str, Any],
                   extra_headers: Optional[Dict[str, str]] = None) -> None:
        payload = json.dumps(body).encode("utf-8")
        self._send_payload(status, payload, "application/json",
                           extra_headers)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_payload(status, text.encode("utf-8"), content_type)

    def _send_payload(self, status: int, payload: bytes, content_type: str,
                      extra_headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            # Echo the request's trace id (accepted or generated) so a
            # client can correlate its logs with the slow-query log.
            self.send_header("X-Trace-Id", trace_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)
        self._count_response(status)

    def _count_response(self, status: int) -> None:
        metrics = getattr(self.server, "metrics", None)
        if metrics is None:
            return
        metrics.add("requests")
        started = getattr(self, "_request_started", None)
        if started is not None:
            metrics.observe_latency(time.monotonic() - started)
            self._request_started = None  # one observation per request
        if status == 408:
            metrics.add("timeouts")
        elif status == 429:
            metrics.add("ratelimited")
        elif status == 503:
            metrics.add("overload")
        elif status >= 500:
            metrics.add("errors")
        elif status >= 400:
            metrics.add("client_errors")

    def _send_error_json(self, error: Exception) -> None:
        self._send_json(status_for_error(error), error_body(error))

    def _begin_request(self) -> None:
        self._request_started = time.monotonic()
        # Accept a caller's trace id (tolerantly — a malformed header is
        # ignored, never a 400) or mint one; every response echoes it and
        # every span/log line of this request carries it.
        header = self.headers.get("X-Trace-Id") if self.headers else None
        trace_id, _ = decode_trace_context(
            {"trace_id": header.strip().lower()} if header else None)
        self._trace_id = trace_id or new_trace_id()
        refresh = getattr(self.server, "refresh_index", None)
        if refresh is None:
            return
        try:
            # Catch up with the writer's published epoch before answering:
            # this is what gives the pool read-your-writes across worker
            # processes.  The no-change fast path is a single stat().
            if refresh():
                metrics = getattr(self.server, "metrics", None)
                if metrics is not None:
                    metrics.add("refreshes")
        except Exception:  # pragma: no cover - replication must not 500 reads
            pass

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._begin_request()
        try:
            if self.path == "/healthz":
                index = self.service.index
                body = {
                    "status": "ok",
                    "pid": os.getpid(),
                    "epoch": int(getattr(index, "epoch", 0)),
                    # For a process that applies its own writes the epoch
                    # *is* the combined epoch and it never trails the WAL;
                    # followers and coordinators override both through the
                    # ``health_extra`` hook.
                    "combined_epoch": int(getattr(index, "combined_epoch",
                                                  getattr(index, "epoch", 0))),
                    "wal_lag": 0,
                    "num_triples": int(index.num_triples),
                }
                extra = getattr(self.server, "health_extra", None)
                if extra is not None:
                    try:
                        body.update(extra())
                    except Exception:  # health must not 500 on a gauge
                        body["status"] = "degraded"
                self._send_json(200, body)
            elif self.path == "/stats":
                self._send_json(200, self.service.statistics())
            elif self.path == "/metrics":
                from repro.service.metrics import (
                    render_prometheus,
                    service_gauges,
                )
                block = getattr(self.server, "metrics_block", None)
                self._send_text(
                    200,
                    render_prometheus(block, service_gauges(self.service)),
                    "text/plain; version=0.0.4; charset=utf-8")
            elif self.path == "/query":
                self._send_json(405, {"error": {
                    "type": "MethodNotAllowed",
                    "message": "use POST /query"}})
            else:
                self._send_json(404, {"error": {
                    "type": "NotFound",
                    "message": f"unknown path {self.path!r}"}})
        except Exception as error:  # pragma: no cover - handler guard
            self._send_error_json(error)

    def _read_body_length(self) -> Optional[int]:
        """The validated Content-Length, or ``None`` after rejecting.

        A missing header on a body-carrying method is 411 and a malformed
        one is 400 — both used to fall through to ``int()`` and surface as
        a raw 500.  Either way the connection closes: the body (if any)
        was never read and would poison the next keep-alive request.
        """
        header = self.headers.get("Content-Length")
        if header is None:
            self.close_connection = True
            self._send_json(411, {"error": {
                "type": "LengthRequired",
                "message": "POST requires a Content-Length header"}})
            return None
        try:
            length = int(header.strip())
        except ValueError:
            length = -1
        if length < 0:
            self.close_connection = True
            self._send_json(400, {"error": {
                "type": "BadRequest",
                "message": f"malformed Content-Length {header!r}"}})
            return None
        return length

    def _shed_load(self) -> bool:
        """Apply rate limiting; True = a 429 was sent."""
        limiter = getattr(self.server, "rate_limiter", None)
        if limiter is not None and not limiter.allow(self.client_address[0]):
            self.close_connection = True
            self._send_json(429, {"error": {
                "type": "RateLimited",
                "message": "per-client rate limit exceeded; retry later"}},
                extra_headers={"Retry-After": "1"})
            return True
        return False

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._begin_request()
        if self.path not in ("/query", "/update", "/compact"):
            self._send_json(404, {"error": {
                "type": "NotFound",
                "message": f"unknown path {self.path!r}"}})
            return
        if self._shed_load():
            return
        admission = getattr(self.server, "admission", None)
        metrics = getattr(self.server, "metrics", None)
        if admission is not None and not admission.try_acquire():
            self.close_connection = True
            self._send_json(503, {"error": {
                "type": "Overloaded",
                "message": f"all {admission.max_inflight} request slots are "
                           f"busy; retry later"}},
                extra_headers={"Retry-After": "1"})
            return
        if metrics is not None:
            metrics.add("inflight")
        try:
            self._handle_post()
        finally:
            if metrics is not None:
                metrics.sub("inflight")
            if admission is not None:
                admission.release()

    def _handle_post(self) -> None:
        try:
            length = self._read_body_length()
            if length is None:
                return
            if length > MAX_BODY_BYTES:
                # The unread body would poison the next keep-alive request.
                self.close_connection = True
                self._send_json(413, {"error": {
                    "type": "PayloadTooLarge",
                    "message": f"request body of {length} bytes exceeds the "
                               f"{MAX_BODY_BYTES} byte limit"}})
                return
            raw = self.rfile.read(length) if length else b""
            try:
                request = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ServiceError(f"request body is not valid JSON: {error}"
                                   ) from error
            if not isinstance(request, dict):
                raise ServiceError("request body must be a JSON object")
            if self.path == "/update":
                self._handle_update(request)
                return
            if self.path == "/compact":
                if request:
                    raise ServiceError(
                        "POST /compact takes an empty body")
                self._handle_compact()
                return
            if "batch" in request:
                batch = request["batch"]
                if not isinstance(batch, list):
                    raise ServiceError("'batch' must be a list of query objects")
                results = []
                for entry in batch:
                    try:
                        results.append(self._run_query_object(entry))
                    except Exception as error:
                        body = error_body(error)
                        body["error"]["status"] = status_for_error(error)
                        results.append(body)
                self._send_json(200, {"results": results,
                                      "count": len(results)})
            else:
                self._send_json(200, self._run_query_object(request))
        except Exception as error:
            self._send_error_json(error)

    def _run_query_object(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One ``POST /query`` object → response body.  The coordinator's
        handler overrides this to annotate partial (best-effort) results."""
        return _run_one(self.service, request,
                        metrics=getattr(self.server, "metrics", None),
                        trace={"trace_id": self._trace_id})

    def _handle_update(self, request: Dict[str, Any]) -> None:
        proxy = getattr(self.server, "update_proxy", None)
        if proxy is None:
            body = _run_update(self.service, request)
            self._count_updates(body)
            self._send_json(200, body)
            return
        # Pool worker: shape-check locally (cheap, keeps malformed input
        # off the writer), then route the batch to the single writer
        # process.  Its reply means "durable in the WAL and published";
        # refreshing before answering gives this worker read-your-writes.
        inserts, deletes = _validate_update(request)
        status, body = proxy.request({
            "op": "update",
            "insert": [list(t) for t in inserts],
            "delete": [list(t) for t in deletes]})
        if status == 200:
            self._count_updates(body)
            self._refresh_after_write()
        self._send_json(status, body)

    def _handle_compact(self) -> None:
        proxy = getattr(self.server, "update_proxy", None)
        if proxy is None:
            self._send_json(200, self.service.compact().to_json())
            return
        status, body = proxy.request({"op": "compact"})
        if status == 200:
            self._refresh_after_write()
        self._send_json(status, body)

    def _count_updates(self, body: Dict[str, Any]) -> None:
        metrics = getattr(self.server, "metrics", None)
        if metrics is not None and isinstance(body, dict):
            applied = (int(body.get("inserted", 0))
                       + int(body.get("deleted", 0)))
            if applied:
                metrics.add("updates", applied)

    def _refresh_after_write(self) -> None:
        refresh = getattr(self.server, "refresh_index", None)
        if refresh is not None:
            try:
                refresh()
            except Exception:  # pragma: no cover - reply is still correct
                pass


class QueryServiceServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one shared :class:`QueryService`.

    Beyond the address/service pair this carries the per-process serving
    policy the handler consults: an optional :class:`AdmissionControl`
    gate, an optional :class:`TokenBucketLimiter`, the process's shared
    metrics slot, and — under the pre-fork pool — an already-bound
    ``listen_socket`` to adopt instead of binding, a ``refresh_index``
    callable (epoch catch-up) and an ``update_proxy`` (route writes to
    the writer process).
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: QueryService,
                 quiet: bool = False,
                 listen_socket: Optional[socket.socket] = None,
                 admission: Optional[AdmissionControl] = None,
                 rate_limiter: Optional[TokenBucketLimiter] = None,
                 metrics=None, metrics_block=None,
                 refresh_index=None, update_proxy=None,
                 health_extra=None,
                 drain: bool = False,
                 handler_timeout: Optional[float] = None,
                 log_format: str = "text",
                 subsystem: str = "http"):
        if listen_socket is None:
            super().__init__(address, QueryServiceHandler)
        else:
            # Adopt a socket bound (and listened) by the pool master before
            # forking: every worker accepts from the same kernel queue.
            super().__init__(address, QueryServiceHandler,
                             bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()[:2]
            self.server_name, self.server_port = self.server_address
        self.service = service
        self.quiet = quiet
        self.admission = admission
        self.rate_limiter = rate_limiter
        self.metrics = metrics
        self.metrics_block = metrics_block
        self.refresh_index = refresh_index
        self.update_proxy = update_proxy
        #: Optional zero-arg callable returning extra ``GET /healthz``
        #: fields (pool workers report follower WAL lag, the coordinator
        #: reports per-shard health through it).
        self.health_extra = health_extra
        self.handler_timeout = handler_timeout
        #: Structured per-subsystem access logger (``--log-format``).
        self.access_logger = get_logger(subsystem, log_format)
        if metrics is not None and getattr(service, "metrics_slot",
                                           None) is None:
            # Let the engine bump profile/slow-query counters in the shared
            # block directly; the slot is per-process, like the service.
            service.metrics_slot = metrics
        if drain:
            # Graceful shutdown: server_close() joins the in-flight handler
            # threads (ThreadingMixIn.block_on_close) instead of abandoning
            # them mid-response.  ``handler_timeout`` bounds how long an
            # idle keep-alive connection can hold the join.
            self.daemon_threads = False


def build_server(service: QueryService, host: str = "127.0.0.1",
                 port: int = 8377, quiet: bool = False,
                 **server_options) -> QueryServiceServer:
    """Bind a server (``port=0`` picks a free port) without starting it.

    Call ``serve_forever()`` to run; the bound port is
    ``server.server_address[1]``.  ``server_options`` are forwarded to
    :class:`QueryServiceServer` (admission control, rate limiter, metrics,
    pool plumbing).
    """
    return QueryServiceServer((host, port), service, quiet=quiet,
                              **server_options)


def serve(index_path, host: str = "127.0.0.1", port: int = 8377,
          quiet: bool = False,
          service: Optional[QueryService] = None,
          **service_options) -> QueryServiceServer:
    """One-call embedding API: load ``index_path`` and bind a server on it."""
    if service is None:
        service = QueryService.from_file(index_path, **service_options)
    return build_server(service, host=host, port=port, quiet=quiet)
