"""A threaded HTTP front-end for :class:`repro.service.engine.QueryService`.

Stdlib only (``http.server``): a :class:`ThreadingHTTPServer` dispatches each
request to its own thread, all of them sharing one read-only index through
the service — the shape the paper's immutable compressed tries are built for.

Endpoints:

* ``POST /query`` — body is a JSON object with either ``"sparql"`` (query
  text) or ``"pattern"`` (three terms, ``null`` = wildcard), plus optional
  ``"limit"``, ``"offset"``, ``"timeout"``, ``"cache"``, ``"engine"``
  (SPARQL only: ``"nested"``, ``"wcoj"`` or ``"auto"``) and — for patterns
  with a bundled dictionary — ``"decode"``.  A ``"batch"`` key with a list
  of such objects answers many queries in one round trip; failed entries
  carry an ``"error"`` object instead of killing the whole batch.
* ``POST /update`` — body is ``{"insert": [[s, p, o], ...]}`` and/or
  ``{"delete": [...]}`` (integer ID triples).  Requires a writable service
  (``repro serve --writable``); responds with the applied counts and the
  new index epoch, plus the compaction report if the batch tripped the
  size-ratio trigger.
* ``POST /compact`` — fold the in-memory delta into a freshly built
  index; responds with the compaction report (a no-op when the delta is
  empty).
* ``GET /stats`` — cache hit rates, latency percentiles, index sizes,
  delta/epoch gauges.
* ``GET /healthz`` — liveness probe.

Failures are structured: every error response is
``{"error": {"type": ..., "message": ...}}`` with the HTTP status mapped
from the :mod:`repro.errors` hierarchy (bad input 400, timeout 408,
storage trouble 500).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    DictionaryError,
    ParseError,
    PatternError,
    QueryTimeoutError,
    ReproError,
    ServiceError,
    StorageError,
    UpdateError,
)
from repro.service.engine import QueryService
from repro.service.jsonio import pattern_result_to_json, query_result_to_json

#: ``repro.errors`` to HTTP status; first match wins (order matters:
#: subclasses before :class:`ReproError`).
_STATUS_BY_ERROR: Tuple[Tuple[type, int], ...] = (
    (ParseError, 400),
    (PatternError, 400),
    (DictionaryError, 400),
    (UpdateError, 400),
    (ServiceError, 400),
    (QueryTimeoutError, 408),
    (StorageError, 500),
    (ReproError, 400),
)


#: Largest request body accepted (a SPARQL BGP or a batch of them fits in
#: far less); bigger declared bodies are rejected with 413 before reading.
MAX_BODY_BYTES = 4 * 1024 * 1024


def status_for_error(error: Exception) -> int:
    """The HTTP status code a failure maps to (500 for non-repro errors)."""
    for error_type, status in _STATUS_BY_ERROR:
        if isinstance(error, error_type):
            return status
    return 500


def error_body(error: Exception) -> Dict[str, Any]:
    """The structured JSON body describing ``error``."""
    return {"error": {"type": type(error).__name__, "message": str(error)}}


def _run_one(service: QueryService, request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one request object against ``service`` and serialise it."""
    if not isinstance(request, dict):
        raise ServiceError("each query must be a JSON object")
    unknown = set(request) - {"sparql", "pattern", "limit", "offset",
                              "timeout", "cache", "decode", "engine"}
    if unknown:
        raise ServiceError(f"unknown request field(s): {sorted(unknown)}")
    limit = request.get("limit")
    offset = request.get("offset", 0)
    timeout = request.get("timeout")
    use_cache = bool(request.get("cache", True))
    engine = request.get("engine")
    if limit is not None and not isinstance(limit, int):
        raise ServiceError("limit must be an integer")
    if not isinstance(offset, int):
        raise ServiceError("offset must be an integer")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ServiceError("timeout must be a number (seconds)")
    if engine is not None and engine not in QueryService.ENGINES:
        raise ServiceError(
            f"unknown engine {engine!r}; expected one of "
            f"{list(QueryService.ENGINES)}")

    if "sparql" in request:
        text = request["sparql"]
        if not isinstance(text, str):
            raise ServiceError("'sparql' must be a string")
        result = service.execute(text, limit=limit, offset=offset,
                                 timeout=timeout, use_cache=use_cache,
                                 engine=engine)
        return query_result_to_json(result)
    if engine is not None:
        raise ServiceError("'engine' only applies to SPARQL queries")
    if "pattern" in request:
        pattern = request["pattern"]
        if (not isinstance(pattern, (list, tuple)) or len(pattern) != 3 or
                not all(term is None or isinstance(term, int)
                        for term in pattern)):
            raise ServiceError(
                "'pattern' must be a list of 3 terms, each an integer ID "
                "or null for a wildcard")
        result = service.select(pattern, limit=limit, offset=offset,
                                use_cache=use_cache)
        dictionary = service.dictionary if request.get("decode") else None
        return pattern_result_to_json(result, dictionary=dictionary)
    raise ServiceError("a query needs either a 'sparql' or a 'pattern' field")


def _parse_triples(value: Any, field: str) -> list:
    """Check the JSON *shape* of one ``insert``/``delete`` triple list.

    Only structure is validated here; the component rules (integers,
    non-negative, int64-bounded) live in one place —
    :func:`repro.dynamic.delta.normalize_triple`, reached through
    ``service.update`` — so the two layers cannot drift apart.  Both error
    types map to HTTP 400.
    """
    if not isinstance(value, list):
        raise ServiceError(f"'{field}' must be a list of [s, p, o] triples")
    triples = []
    for entry in value:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise ServiceError(
                f"each '{field}' entry must be a list of 3 integer IDs, "
                f"got {entry!r}")
        triples.append(tuple(entry))
    return triples


def _run_update(service: QueryService, request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one ``POST /update`` body against ``service``."""
    unknown = set(request) - {"insert", "delete"}
    if unknown:
        raise ServiceError(f"unknown update field(s): {sorted(unknown)}")
    inserts = _parse_triples(request["insert"], "insert") \
        if "insert" in request else []
    deletes = _parse_triples(request["delete"], "delete") \
        if "delete" in request else []
    if not inserts and not deletes:
        raise ServiceError(
            "an update needs an 'insert' and/or a 'delete' list")
    # One atomic batch: a failure anywhere applies nothing, and readers
    # never observe the inserts without the deletes.
    result = service.update(inserts=inserts, deletes=deletes)
    return result.to_json()


class QueryServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the shared :class:`QueryService`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if not getattr(self.server, "quiet", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, error: Exception) -> None:
        self._send_json(status_for_error(error), error_body(error))

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        try:
            if self.path == "/healthz":
                self._send_json(200, {
                    "status": "ok",
                    "num_triples": int(self.service.index.num_triples),
                })
            elif self.path == "/stats":
                self._send_json(200, self.service.statistics())
            elif self.path == "/query":
                self._send_json(405, {"error": {
                    "type": "MethodNotAllowed",
                    "message": "use POST /query"}})
            else:
                self._send_json(404, {"error": {
                    "type": "NotFound",
                    "message": f"unknown path {self.path!r}"}})
        except Exception as error:  # pragma: no cover - handler guard
            self._send_error_json(error)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path not in ("/query", "/update", "/compact"):
            self._send_json(404, {"error": {
                "type": "NotFound",
                "message": f"unknown path {self.path!r}"}})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                # The unread body would poison the next keep-alive request.
                self.close_connection = True
                self._send_json(413, {"error": {
                    "type": "PayloadTooLarge",
                    "message": f"request body of {length} bytes exceeds the "
                               f"{MAX_BODY_BYTES} byte limit"}})
                return
            raw = self.rfile.read(length) if length else b""
            try:
                request = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ServiceError(f"request body is not valid JSON: {error}"
                                   ) from error
            if not isinstance(request, dict):
                raise ServiceError("request body must be a JSON object")
            if self.path == "/update":
                self._send_json(200, _run_update(self.service, request))
                return
            if self.path == "/compact":
                if request:
                    raise ServiceError(
                        "POST /compact takes an empty body")
                self._send_json(200, self.service.compact().to_json())
                return
            if "batch" in request:
                batch = request["batch"]
                if not isinstance(batch, list):
                    raise ServiceError("'batch' must be a list of query objects")
                results = []
                for entry in batch:
                    try:
                        results.append(_run_one(self.service, entry))
                    except Exception as error:
                        body = error_body(error)
                        body["error"]["status"] = status_for_error(error)
                        results.append(body)
                self._send_json(200, {"results": results,
                                      "count": len(results)})
            else:
                self._send_json(200, _run_one(self.service, request))
        except Exception as error:
            self._send_error_json(error)


class QueryServiceServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one shared :class:`QueryService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: QueryService,
                 quiet: bool = False):
        super().__init__(address, QueryServiceHandler)
        self.service = service
        self.quiet = quiet


def build_server(service: QueryService, host: str = "127.0.0.1",
                 port: int = 8377, quiet: bool = False) -> QueryServiceServer:
    """Bind a server (``port=0`` picks a free port) without starting it.

    Call ``serve_forever()`` to run; the bound port is
    ``server.server_address[1]``.
    """
    return QueryServiceServer((host, port), service, quiet=quiet)


def serve(index_path, host: str = "127.0.0.1", port: int = 8377,
          quiet: bool = False,
          service: Optional[QueryService] = None,
          **service_options) -> QueryServiceServer:
    """One-call embedding API: load ``index_path`` and bind a server on it."""
    if service is None:
        service = QueryService.from_file(index_path, **service_options)
    return build_server(service, host=host, port=port, quiet=quiet)
