"""Fork-shared serving metrics with Prometheus text exposition.

The pre-fork pool (:mod:`repro.service.pool`) needs one ``GET /metrics``
that aggregates over every worker process without any IPC on the hot
path.  The classic trick: the master allocates one anonymous *shared*
memory map before forking (``mmap.mmap(-1, ...)`` is
``MAP_SHARED | MAP_ANONYMOUS``), carves it into fixed-size slots of
``uint64`` counters — one slot per worker plus one for the master — and
every process writes only its own slot.  Increments are plain
read-modify-write: safe because each slot has exactly one writing
process (threads within a worker serialise on a per-process lock), and
8-byte aligned loads/stores are atomic on every platform we run on, so a
scraper reading another slot sees a torn-free (if slightly stale) value.

The same machinery serves the single-process ``repro serve`` with one
worker slot — the /metrics endpoint behaves identically with and without
``--workers``.
"""

from __future__ import annotations

import mmap
import struct
import threading
from typing import Dict, List, Optional, Tuple

#: Upper bucket bounds (seconds) of the request-latency histogram; the
#: implicit ``+Inf`` bucket is the total observation count.
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
                   2.5, 5.0)

#: Per-stage histograms exported next to the request-latency one: query
#: planning, engine execution, and JSON serialisation, all sharing
#: :data:`LATENCY_BUCKETS`.  Each stage owns a ``<stage>_count`` /
#: ``<stage>_sum_us`` / ``<stage>_le_<i>`` run of slot fields.
STAGES = ("plan", "execute", "serialize")


def _histogram_fields(prefix: str) -> Tuple[str, ...]:
    return (f"{prefix}_count", f"{prefix}_sum_us") + tuple(
        f"{prefix}_le_{i}" for i in range(len(LATENCY_BUCKETS)))


#: Per-slot counter fields, in storage order.  ``*_sum_us`` fields keep
#: microseconds so the slots stay integer-only.  ``SLOT_BYTES`` is derived
#: from this tuple, so extending it resizes the shared block everywhere.
FIELDS = (
    "requests",       # responses sent, any status
    "errors",         # 5xx responses (excluding overload shedding)
    "client_errors",  # 4xx responses (excluding 408/429)
    "timeouts",       # 408 responses
    "overload",       # 503 admission-control rejections
    "ratelimited",    # 429 token-bucket rejections
    "inflight",       # gauge: requests currently executing
    "updates",        # triples accepted through /update on this slot
    "refreshes",      # epoch-document refreshes that changed the view
    "restarts",       # master slot only: children respawned after a crash
    "workers",        # master slot only: gauge of live worker processes
    "profile_requests",  # queries that asked for profile=true
    "slow_queries",      # queries recorded in the slow-query log
    "nested_seeks",      # cursor seeks by the nested-loop engine
    "wcoj_seeks",        # cursor seeks by the leapfrog engine
    "nested_blocks",     # blocks decoded by the nested-loop engine
    "wcoj_blocks",       # blocks decoded by the leapfrog engine
) + _histogram_fields("latency") + tuple(
    field for stage in STAGES for field in _histogram_fields(stage))

_FIELD_INDEX = {name: i for i, name in enumerate(FIELDS)}
_WORD = struct.Struct("<Q")
SLOT_BYTES = len(FIELDS) * _WORD.size


class SlotMetrics:
    """One process's window onto its own slot of the shared block.

    All mutators take the slot's process-local lock: a slot has one
    writing *process* but possibly many writing *threads* (the HTTP
    server is threaded inside each worker).
    """

    def __init__(self, block: "MetricsBlock", slot: int):
        self._block = block
        self._base = slot * SLOT_BYTES
        self._lock = threading.Lock()

    def _read(self, field: str) -> int:
        offset = self._base + _FIELD_INDEX[field] * _WORD.size
        return _WORD.unpack_from(self._block.buffer, offset)[0]

    def _write(self, field: str, value: int) -> None:
        offset = self._base + _FIELD_INDEX[field] * _WORD.size
        _WORD.pack_into(self._block.buffer, offset, value & 0xFFFFFFFFFFFFFFFF)

    def add(self, field: str, amount: int = 1) -> None:
        with self._lock:
            self._write(field, self._read(field) + amount)

    def sub(self, field: str, amount: int = 1) -> None:
        with self._lock:
            self._write(field, max(0, self._read(field) - amount))

    def set(self, field: str, value: int) -> None:
        with self._lock:
            self._write(field, value)

    def get(self, field: str) -> int:
        return self._read(field)

    def _observe(self, prefix: str, seconds: float) -> None:
        with self._lock:
            self._write(f"{prefix}_count", self._read(f"{prefix}_count") + 1)
            self._write(f"{prefix}_sum_us",
                        self._read(f"{prefix}_sum_us") + int(seconds * 1e6))
            for i, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    field = f"{prefix}_le_{i}"
                    self._write(field, self._read(field) + 1)
                    break

    def observe_latency(self, seconds: float) -> None:
        """Record one served request's wall-clock latency."""
        self._observe("latency", seconds)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one request's time in ``plan``/``execute``/``serialize``."""
        if stage in STAGES:
            self._observe(stage, seconds)


class MetricsBlock:
    """The shared counter block: slot 0 is the master, slots 1..N workers."""

    def __init__(self, num_workers: int):
        self.num_workers = max(1, int(num_workers))
        self._size = (self.num_workers + 1) * SLOT_BYTES
        #: Anonymous shared mapping: created before fork, inherited by every
        #: child, visible to all of them.
        self.buffer = mmap.mmap(-1, self._size)

    def master(self) -> SlotMetrics:
        return SlotMetrics(self, 0)

    def worker(self, index: int) -> SlotMetrics:
        if not 0 <= index < self.num_workers:
            raise IndexError(f"worker slot {index} out of range "
                             f"(pool of {self.num_workers})")
        return SlotMetrics(self, index + 1)

    def totals(self) -> Dict[str, int]:
        """Each field summed across the worker slots (master excluded)."""
        sums = dict.fromkeys(FIELDS, 0)
        for slot in range(1, self.num_workers + 1):
            view = SlotMetrics(self, slot)
            for field in FIELDS:
                sums[field] += view.get(field)
        return sums

    def close(self) -> None:
        try:
            self.buffer.close()
        except (BufferError, ValueError):  # pragma: no cover - exported views
            pass


def _line(out: List[str], name: str, value, labels: str = "") -> None:
    out.append(f"{name}{labels} {value}")


def _histogram(out: List[str], totals: Dict[str, int], prefix: str,
               name: str, help_text: str) -> None:
    """Emit one histogram family from a slot-field run (cumulative buckets,
    as the exposition format requires)."""
    out.append(f"# HELP {name} {help_text}")
    out.append(f"# TYPE {name} histogram")
    cumulative = 0
    for i, bound in enumerate(LATENCY_BUCKETS):
        cumulative += totals[f"{prefix}_le_{i}"]
        _line(out, f"{name}_bucket", cumulative, f'{{le="{bound}"}}')
    _line(out, f"{name}_bucket", totals[f"{prefix}_count"], '{le="+Inf"}')
    _line(out, f"{name}_sum", totals[f"{prefix}_sum_us"] / 1e6)
    _line(out, f"{name}_count", totals[f"{prefix}_count"])


def render_prometheus(block: Optional[MetricsBlock],
                      gauges: Optional[Dict[str, float]] = None) -> str:
    """The ``GET /metrics`` body, Prometheus text exposition format 0.0.4.

    ``gauges`` carries point-in-time values the counter block cannot
    (index epoch, triple count, cache sizes): plain ``repro_<name>``
    gauges.  Histogram buckets are emitted cumulatively, as the format
    requires, from the per-bucket counts the slots store.
    """
    out: List[str] = []
    if block is not None:
        totals = block.totals()
        master = block.master()
        counters: Tuple[Tuple[str, str, str], ...] = (
            ("requests", "repro_http_requests_total",
             "HTTP responses sent, any status."),
            ("errors", "repro_http_errors_total",
             "HTTP 5xx responses (excluding overload shedding)."),
            ("client_errors", "repro_http_client_errors_total",
             "HTTP 4xx responses (excluding 408/429)."),
            ("timeouts", "repro_request_timeouts_total",
             "Requests that hit their deadline (HTTP 408)."),
            ("overload", "repro_overload_rejections_total",
             "Requests shed by admission control (HTTP 503)."),
            ("ratelimited", "repro_ratelimited_total",
             "Requests shed by the per-client token bucket (HTTP 429)."),
            ("updates", "repro_update_triples_total",
             "Triples accepted through /update."),
            ("refreshes", "repro_epoch_refreshes_total",
             "Epoch refreshes that changed the served view."),
            ("profile_requests", "repro_profile_requests_total",
             "Queries that asked for profile=true."),
            ("slow_queries", "repro_slow_queries_total",
             "Queries recorded in the slow-query log."),
        )
        for field, name, help_text in counters:
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} counter")
            _line(out, name, totals[field])
        out.append("# HELP repro_engine_seeks_total Trie cursor seeks, "
                   "per executor.")
        out.append("# TYPE repro_engine_seeks_total counter")
        _line(out, "repro_engine_seeks_total", totals["nested_seeks"],
              '{engine="nested"}')
        _line(out, "repro_engine_seeks_total", totals["wcoj_seeks"],
              '{engine="wcoj"}')
        out.append("# HELP repro_engine_blocks_total Postings blocks "
                   "decoded, per executor.")
        out.append("# TYPE repro_engine_blocks_total counter")
        _line(out, "repro_engine_blocks_total", totals["nested_blocks"],
              '{engine="nested"}')
        _line(out, "repro_engine_blocks_total", totals["wcoj_blocks"],
              '{engine="wcoj"}')
        out.append("# HELP repro_inflight_requests Requests currently "
                   "executing, summed over workers.")
        out.append("# TYPE repro_inflight_requests gauge")
        _line(out, "repro_inflight_requests", totals["inflight"])
        out.append("# HELP repro_worker_restarts_total Worker processes "
                   "respawned after a crash.")
        out.append("# TYPE repro_worker_restarts_total counter")
        _line(out, "repro_worker_restarts_total", master.get("restarts"))
        out.append("# HELP repro_workers Live worker processes.")
        out.append("# TYPE repro_workers gauge")
        _line(out, "repro_workers", master.get("workers"))
        _histogram(out, totals, "latency", "repro_request_seconds",
                   "Request latency.")
        _histogram(out, totals, "plan", "repro_plan_seconds",
                   "Query planning time (parse + plan selection).")
        _histogram(out, totals, "execute", "repro_execute_seconds",
                   "Engine execution time.")
        _histogram(out, totals, "serialize", "repro_serialize_seconds",
                   "Response serialisation time.")
    for name, value in sorted((gauges or {}).items()):
        metric = f"repro_{name}"
        out.append(f"# TYPE {metric} gauge")
        _line(out, metric, value)
    return "\n".join(out) + "\n"


def service_gauges(service) -> Dict[str, float]:
    """Point-in-time gauges for :func:`render_prometheus` from a service."""
    gauges: Dict[str, float] = {}
    try:
        index = service.index
        gauges["index_triples"] = float(index.num_triples)
        gauges["index_epoch"] = float(getattr(index, "epoch", 0))
    except Exception:  # pragma: no cover - defensive: scrape must not 500
        pass
    return gauges
