"""The serving layer: a long-lived, concurrent query service over one
loaded index.

The paper's compressed tries are immutable and read-optimised — the right
shape for many threads sharing one in-memory index.  This package turns the
batch CLI into a server:

* :class:`QueryService` (:mod:`repro.service.engine`) — the embeddable
  engine: plan cache, LRU result cache with statistics, streaming
  execution with limit/offset/timeout, batch calls, and — over a
  :class:`repro.dynamic.DynamicIndex` — ``insert``/``delete``/``compact``
  with epoch-keyed cache invalidation;
* :func:`build_server` / :func:`serve` (:mod:`repro.service.http`) — the
  stdlib-only threaded HTTP front-end (``POST /query``, ``POST /update``,
  ``POST /compact``, ``GET /stats``, ``GET /healthz``) behind
  ``repro serve``;
* :class:`ServerPool` (:mod:`repro.service.pool`) — the pre-fork
  multi-process pool behind ``repro serve --workers N``: one master, one
  writer, N forked workers sharing the listening socket and one
  mmap-loaded index, with admission control
  (:class:`AdmissionControl`), per-client rate limiting
  (:class:`TokenBucketLimiter`) and a shared-memory ``GET /metrics``
  (:mod:`repro.service.metrics`);
* :mod:`repro.service.cache` — the LRU + BGP-normalisation primitives;
* :mod:`repro.service.jsonio` — the JSON serialisation shared with the
  CLI's ``--json`` output.
"""

from repro.service.cache import CacheStatistics, LRUCache, normalize_bgp
from repro.service.engine import PatternResult, QueryResult, QueryService
from repro.service.http import (
    AdmissionControl,
    QueryServiceHandler,
    QueryServiceServer,
    TokenBucketLimiter,
    build_server,
    serve,
    status_for_error,
)
from repro.service.metrics import MetricsBlock, render_prometheus
from repro.service.pool import ServerPool, WriterClient

__all__ = [
    "AdmissionControl",
    "CacheStatistics",
    "LRUCache",
    "MetricsBlock",
    "ServerPool",
    "TokenBucketLimiter",
    "WriterClient",
    "normalize_bgp",
    "render_prometheus",
    "PatternResult",
    "QueryResult",
    "QueryService",
    "QueryServiceHandler",
    "QueryServiceServer",
    "build_server",
    "serve",
    "status_for_error",
]
