"""Caching primitives for the query service.

Two small, thread-safe building blocks:

* :class:`LRUCache` — a bounded least-recently-used map with hit / miss /
  eviction counters, used both for query plans and for result pages;
* :func:`normalize_bgp` — the canonicalisation that makes those caches
  effective: variable names are rewritten to ``?v0, ?v1, ...`` in order of
  first appearance, so alpha-equivalent queries (same shape, different
  variable spellings) share one cache entry.  The mapping is returned so a
  hit can be translated back into the requester's variable names.

The index itself is immutable, which is what makes caching safe: a cached
plan or result page can never be invalidated by a write.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.queries.sparql import BasicGraphPattern, is_variable

#: One normalized BGP: a tuple of per-template ``(s, p, o)`` term tuples
#: whose variables are ``?v0, ?v1, ...`` in order of first appearance.
BgpKey = Tuple[Tuple[Any, Any, Any], ...]


def normalize_bgp(bgp: BasicGraphPattern) -> Tuple[BgpKey, Dict[str, str]]:
    """Canonicalise ``bgp``'s variable names.

    Returns ``(key, mapping)`` where ``mapping`` translates each original
    variable to its canonical name (``{"?person": "?v0", ...}``).
    """
    mapping: Dict[str, str] = {}
    key_templates = []
    for template in bgp.templates:
        terms = []
        for term in template.terms():
            if is_variable(term):
                if term not in mapping:
                    mapping[term] = f"?v{len(mapping)}"
                terms.append(mapping[term])
            else:
                terms.append(int(term))
        key_templates.append(tuple(terms))
    return tuple(key_templates), mapping


@dataclass
class CacheStatistics:
    """Counters of one cache's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy for ``/stats`` serialisation."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded, thread-safe least-recently-used cache with statistics.

    ``capacity <= 0`` disables the cache entirely (every lookup misses,
    nothing is stored) — handy for benchmarking cold paths.
    """

    def __init__(self, capacity: int):
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._statistics = CacheStatistics()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def statistics(self) -> CacheStatistics:
        return self._statistics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value or ``None``; counts a hit or a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._statistics.misses += 1
                return None
            self._entries.move_to_end(key)
            self._statistics.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the least recently used."""
        if self._capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._statistics.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Statistics plus current occupancy, for ``/stats``."""
        with self._lock:
            size = len(self._entries)
        report = self._statistics.snapshot()
        report.update({"size": size, "capacity": self._capacity})
        return report
