"""The embeddable query engine behind ``repro serve``.

A :class:`QueryService` owns one loaded, immutable :class:`TripleIndex`
(plus its optional RDF dictionary and planner statistics) and answers SPARQL
BGPs and triple selection patterns from any number of threads:

* **plan cache** — planning is selectivity-driven and deterministic, so the
  greedy template order is cached per *normalized* BGP (variables renamed to
  canonical ``?v0, ?v1, ...``), making alpha-equivalent queries share a plan;
* **result cache** — an LRU over result *pages* (normalized BGP + projection
  + limit/offset), so repeated hot queries skip the join entirely; cached
  bindings are stored under canonical variable names and translated back to
  each requester's spelling on a hit;
* **streaming execution** — misses run through
  :func:`repro.queries.planner.stream_bgp`, so ``limit`` pages never
  materialise the full result set and a per-request wall-clock ``timeout``
  bounds runaway joins;
* **statistics** — hit/miss/eviction counters for both caches, query and
  timeout totals, and latency percentiles over a sliding window, all
  exported by :meth:`QueryService.statistics` (the ``/stats`` endpoint);
* **updates** — when the index is a :class:`repro.dynamic.DynamicIndex`
  (``from_file(..., writable=True)`` / ``repro serve --writable``),
  :meth:`insert`, :meth:`delete` and :meth:`compact` mutate it.  Every
  request executes against one pinned snapshot (epoch) of the index, and
  result-cache keys carry that epoch, so a write can never serve stale
  pages; cached plans are invalidated when a compaction refreshes the
  planner's cardinality histograms.

Everything is thread-safe: reads run against immutable snapshots, writes
serialise inside the dynamic index, the caches lock internally, and the
counters share one service lock.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.base import TripleIndex
from repro.errors import ServiceError
from repro.obs import (
    OperatorCounters,
    QueryProfile,
    SlowQueryLog,
    decode_trace_context,
)
from repro.queries.planner import ENGINES as _ENGINES
from repro.queries.planner import (
    Cardinalities,
    ExecutionStatistics,
    QueryPlanner,
    stream_bgp,
)
from repro.queries.wcoj import (
    plan_variable_order,
    stream_bgp_wcoj,
    variable_estimates,
)
from repro.queries.sparql import SparqlQuery, parse_sparql
from repro.service.cache import LRUCache, normalize_bgp

#: What :meth:`QueryService.execute` accepts: SPARQL text or a parsed query.
QueryLike = Union[str, SparqlQuery]
#: A selection pattern: three terms, ``None`` meaning wildcard.
PatternLike = Sequence[Optional[int]]


@dataclass
class QueryResult:
    """One answered query: a page of bindings plus how it was produced."""

    variables: Tuple[str, ...]
    bindings: List[Dict[str, int]]
    cached: bool
    elapsed_seconds: float
    limit: Optional[int] = None
    offset: int = 0
    #: Whether more solutions exist beyond this page (``None`` = unknown,
    #: i.e. the query ran without a limit and the page is complete).
    has_more: Optional[bool] = None
    #: Plain-dict execution summary (``patterns_executed`` etc.); for a
    #: cache hit this is the summary recorded when the entry was computed.
    statistics: Dict[str, int] = field(default_factory=dict)
    #: Wall time per request stage (``parse`` / ``plan`` / ``execute``,
    #: seconds) — always populated (three clock reads), feeding the
    #: per-stage Prometheus histograms.
    stages: Dict[str, float] = field(default_factory=dict)
    #: The JSON span tree (``{"trace_id", "root"}``) when the request asked
    #: for ``profile=True``; ``None`` otherwise.
    profile: Optional[Dict[str, Any]] = None

    @property
    def count(self) -> int:
        return len(self.bindings)


@dataclass
class PatternResult:
    """One answered triple selection pattern."""

    triples: List[Tuple[int, int, int]]
    cached: bool
    elapsed_seconds: float
    limit: Optional[int] = None
    offset: int = 0
    has_more: Optional[bool] = None

    @property
    def count(self) -> int:
        return len(self.triples)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence.

    The classic ``ceil(fraction * n) - 1`` rank: monotone in ``fraction``
    by construction, so ``p50 <= p90 <= p99`` holds for every window size
    (the previous ``round``-based rank relied on the rounding mode and made
    that property easy to break when tweaked; the ceiling form is the
    textbook definition and keeps ``p100`` = max).
    """
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def latency_report(latencies: Sequence[float]) -> Dict[str, float]:
    """The ``latency_ms`` block of a ``/stats`` report (shared with the
    coordinator so both report percentiles identically)."""
    ordered = sorted(latencies)
    return {
        "window": len(ordered),
        "mean": (sum(ordered) / len(ordered) * 1e3 if ordered else 0.0),
        "p50": _percentile(ordered, 0.50) * 1e3,
        "p90": _percentile(ordered, 0.90) * 1e3,
        "p99": _percentile(ordered, 0.99) * 1e3,
        "max": (ordered[-1] * 1e3) if ordered else 0.0,
    }


def _build_spans(query_profile: "QueryProfile", stages: Dict[str, float],
                 counters: Optional[List[OperatorCounters]],
                 operator_kind: str, plan_attrs: Dict[str, Any],
                 summary: Dict[str, Any], cached: bool) -> None:
    """Assemble the parse/plan/execute span tree for one request.

    Stage spans carry real wall times; operator spans (one per join level,
    attached under ``execute``) carry counters and the estimated-vs-actual
    cardinality pair but no own clock — a per-visit timer would cost more
    than the work it measures.
    """
    root = query_profile.root
    engine = summary.get("engine") or plan_attrs.get("engine")
    if engine:
        root.attrs["engine"] = engine
    if "parse" in stages:
        parse_span = root.child("parse")
        parse_span.elapsed_seconds = stages["parse"]
    plan_span = root.child("plan")
    plan_span.elapsed_seconds = stages.get("plan", 0.0)
    for key, value in plan_attrs.items():
        plan_span.attrs.setdefault(key, value)
    execute_span = root.child("execute")
    execute_span.elapsed_seconds = stages.get("execute", 0.0)
    if cached:
        execute_span.attrs["cache_hit"] = True
    for key in ("patterns_executed", "triples_matched", "seeks",
                "blocks_decoded"):
        value = summary.get(key)
        if value:
            execute_span.counters[key] = int(value)
    if counters:
        for level in counters:
            level.attach(execute_span, operator_kind)


class QueryService:
    """A long-lived, thread-safe query engine over one loaded index.

    ``max_limit`` caps the page size a single request may ask for (and is
    the implicit limit when a request gives none) — the guard rail that
    keeps one pathological query from materialising millions of bindings
    inside a shared server.  ``default_timeout`` (seconds) applies to every
    request that does not bring its own.

    ``engine`` is the default executor for SPARQL BGPs: ``"nested"`` (the
    nested-loop pipeline), ``"wcoj"`` (the leapfrog multiway join) or
    ``"auto"`` (wcoj for cyclic/multi-join BGPs).  Requests may override it
    per call; every result's statistics record which executor actually ran.
    """

    #: The accepted executor names, shared with the query layer.
    ENGINES = _ENGINES

    def __init__(self, index: TripleIndex, dictionary: Optional[Any] = None,
                 cardinalities: Optional[Cardinalities] = None,
                 plan_cache_size: int = 256,
                 result_cache_size: int = 256,
                 default_timeout: Optional[float] = None,
                 max_limit: Optional[int] = None,
                 latency_window: int = 2048,
                 engine: str = "auto",
                 meta: Optional[dict] = None,
                 writable: Optional[bool] = None,
                 slow_log=None,
                 slow_ms: float = 500.0):
        if engine not in self.ENGINES:
            raise ServiceError(
                f"unknown engine {engine!r}; expected one of {self.ENGINES}")
        self._index = index
        #: Whether this service accepts insert/delete/compact.  ``None``
        #: (the default) means "iff the index is dynamic" — right for a
        #: caller who constructed a DynamicIndex deliberately.  from_file
        #: passes an explicit value so a delta-carrying file served without
        #: ``writable=True`` stays read-only: the dynamic wrapper is then
        #: only there so reads see the merged view.
        if writable is None:
            writable = hasattr(index, "delta_statistics")
        self._writable = bool(writable)
        self._dictionary = dictionary
        self._planner = QueryPlanner(cardinalities=cardinalities)
        self._default_engine = engine
        self._meta = dict(meta or {})
        self._plan_cache = LRUCache(plan_cache_size)
        self._result_cache = LRUCache(result_cache_size)
        self._default_timeout = default_timeout
        self._max_limit = max_limit
        self._lock = threading.Lock()
        self._latencies: deque = deque(maxlen=max(1, latency_window))
        self._queries_executed = 0
        self._patterns_executed = 0
        self._batches_executed = 0
        self._timeouts = 0
        self._errors = 0
        self._engine_counts: Dict[str, int] = {"nested": 0, "wcoj": 0}
        self._updates_applied = 0
        #: ``slow_log`` is a path (or a ready :class:`SlowQueryLog`); when
        #: set, every query is profiled so an offending one can be logged
        #: with its span tree (you cannot profile retroactively).
        if slow_log is not None and not isinstance(slow_log, SlowQueryLog):
            slow_log = SlowQueryLog(slow_log, threshold_ms=slow_ms)
        self._slow_log: Optional[SlowQueryLog] = slow_log
        self._profile_requests = 0
        self._slow_queries = 0
        #: Optional per-process shared-metrics slot (set by the HTTP layer)
        #: mirroring ``profile_requests``/``slow_queries`` into /metrics.
        self.metrics_slot = None
        #: Set by :meth:`from_file`; a compaction persists the rebuilt
        #: index here (None = in-memory only, the WAL keeps the history).
        self._source_path = None
        #: Last compaction-persist failure (None = the last persist, if
        #: any, succeeded); surfaced under ``updates.persist_error``.
        self._persist_error: Optional[str] = None
        #: Bumped when the planner's cardinalities change (compaction):
        #: carried in every plan-cache key, so stale plans die with it.
        self._plan_epoch = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_file(cls, path, writable: bool = False, wal_path=None,
                  compaction_ratio: Optional[float] = None,
                  mmap: bool = False, **options) -> "QueryService":
        """Load a saved index file once and serve it indefinitely.

        Planner statistics bundled in the file (``repro build`` writes them
        by default) become the service's selectivity estimates.  With
        ``writable=True`` (implied by ``wal_path``) the index is wrapped in
        a :class:`repro.dynamic.DynamicIndex` so :meth:`insert`,
        :meth:`delete` and :meth:`compact` work; ``wal_path`` makes the
        accepted writes durable (replayed if the file already exists), and
        ``compaction_ratio`` arms the automatic size-ratio compaction
        trigger.  A file carrying a ``delta`` section is always served
        through the merged dynamic view so reads are correct, but it stays
        *read-only* unless writability was explicitly requested.

        ``mmap=True`` page-maps the container instead of reading it eagerly,
        so start-up is O(1) in index size (best paired with a v3 aligned
        file, see ``save_index(..., aligned=True)``).  Writability composes
        with it: the base stays a read-only view while delta state lives on
        the side.
        """
        from repro.storage import load_index
        loaded = load_index(path, mmap=mmap)
        index = loaded.queryable(wal_path=wal_path,
                                 compaction_ratio=compaction_ratio,
                                 writable=writable)
        service = cls(index, dictionary=loaded.dictionary,
                      cardinalities=loaded.planner_stats, meta=loaded.meta,
                      writable=writable or wal_path is not None,
                      **options)
        # Remembering the source file lets a compaction persist the rebuilt
        # index back (and only then truncate the WAL).
        service._source_path = path
        return service

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #

    @property
    def index(self) -> TripleIndex:
        return self._index

    def _snapshot(self) -> TripleIndex:
        """The view one request executes against (pinned for its duration)."""
        factory = getattr(self._index, "snapshot", None)
        return factory() if factory is not None else self._index

    def _dynamic_index(self):
        """The mutable index behind :meth:`insert`/:meth:`delete`/:meth:`compact`."""
        from repro.dynamic import DynamicIndex
        if not self._writable or not isinstance(self._index, DynamicIndex):
            raise ServiceError(
                "this service is read-only: open the index with "
                "writable=True (CLI: repro serve --writable) to accept "
                "updates")
        return self._index

    @property
    def dictionary(self) -> Optional[Any]:
        return self._dictionary

    def parse(self, text: str) -> SparqlQuery:
        """Parse SPARQL text against this service's dictionary."""
        return parse_sparql(text, dictionary=self._dictionary)

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #

    def _effective_limit(self, limit: Optional[int]) -> Optional[int]:
        if limit is None:
            return self._max_limit
        if limit < 0:
            raise ServiceError(f"limit must be >= 0, got {limit}")
        if self._max_limit is not None:
            return min(limit, self._max_limit)
        return limit

    def _plan_for(self, query: SparqlQuery, key) -> Tuple[Tuple[int, ...], int]:
        """The cached ``(template order, num Cartesian joins)`` for ``key``."""
        entry = self._plan_cache.get(key)
        if entry is None:
            entry = self._planner.plan_order(query.bgp)
            self._plan_cache.put(key, entry)
        return entry

    def _record(self, elapsed: float, timed_out: bool = False,
                failed: bool = False, pattern: bool = False,
                engine: Optional[str] = None) -> None:
        with self._lock:
            self._latencies.append(elapsed)
            if pattern:
                self._patterns_executed += 1
            else:
                self._queries_executed += 1
            if timed_out:
                self._timeouts += 1
            if failed:
                self._errors += 1
            if engine is not None:
                self._engine_counts[engine] = (
                    self._engine_counts.get(engine, 0) + 1)

    def _resolve_engine(self, query: SparqlQuery, engine: Optional[str]) -> str:
        """Pick the executor for one request (``None`` = service default)."""
        if engine is None:
            engine = self._default_engine
        if engine not in self.ENGINES:
            raise ServiceError(
                f"unknown engine {engine!r}; expected one of {self.ENGINES}")
        if engine == "auto":
            from repro.queries.wcoj import choose_engine
            engine = choose_engine(query.bgp)
        return engine

    def execute(self, query: QueryLike, limit: Optional[int] = None,
                offset: int = 0, timeout: Optional[float] = None,
                use_cache: bool = True,
                engine: Optional[str] = None,
                profile: bool = False,
                trace: Optional[Dict[str, Any]] = None) -> QueryResult:
        """Answer one SPARQL BGP, preferring the result cache.

        ``query`` is SPARQL text (parsed against the bundled dictionary) or
        an already-parsed :class:`SparqlQuery`.  The result page honours
        ``limit``/``offset`` (clamped to the service's ``max_limit``) and
        reports ``has_more`` whenever a limit was in force.  ``engine``
        overrides the service's default executor for this request; the
        result's ``statistics["engine"]`` records which executor ran (pages
        are cached per executor — the two engines enumerate the same solution
        multiset in different orders).

        ``profile=True`` additionally records a span tree — parse, plan and
        execute stages plus one operator span per join level with the
        planner's estimated cardinality next to the actual bindings
        produced — returned as ``result.profile``.  Profiling never changes
        the result: the same executor runs the same plan, only counters are
        collected.  ``trace`` (a ``{"trace_id", "parent_span_id"}`` mapping,
        see :func:`repro.obs.encode_trace_context`) stitches this profile
        into a caller's distributed trace.
        """
        if offset < 0:
            raise ServiceError(f"offset must be >= 0, got {offset}")
        started = time.monotonic()
        query_text = query if isinstance(query, str) else None
        # A slow-query log means every query is profiled (you cannot
        # profile retroactively); the span tree is only *returned* when the
        # request asked for it.
        want_profile = bool(profile) or self._slow_log is not None
        query_profile: Optional[QueryProfile] = None
        if want_profile:
            trace_id, parent_span_id = decode_trace_context(trace)
            query_profile = QueryProfile(trace_id=trace_id,
                                         parent_span_id=parent_span_id)
            if profile:
                with self._lock:
                    self._profile_requests += 1
                self._bump_metric("profile_requests")
        stages: Dict[str, float] = {}
        counters: Optional[List[OperatorCounters]] = None
        operator_kind = "pattern"
        plan_attrs: Dict[str, Any] = {}
        statistics: Optional[ExecutionStatistics] = None
        try:
            if isinstance(query, str):
                stamp = time.perf_counter()
                query = self.parse(query)
                stages["parse"] = time.perf_counter() - stamp
            limit = self._effective_limit(limit)
            timeout = self._default_timeout if timeout is None else timeout
            stamp = time.perf_counter()
            engine = self._resolve_engine(query, engine)

            # Pin one snapshot (and its epoch) for the whole request: the
            # join sees a consistent view even while writes land, and the
            # epoch in the cache key retires every page a write outdates.
            index = self._snapshot()
            epoch = getattr(index, "epoch", 0)

            key, mapping = normalize_bgp(query.bgp)
            projection = tuple(query.projection or query.variables())
            # Projection-only variables (absent from the BGP) are prefixed so
            # they can never collide with the canonical ``?vN`` names.
            normalized_projection = tuple(mapping.get(v, "?_" + v)
                                          for v in projection)
            reverse = {canonical: original
                       for original, canonical in mapping.items()}
            result_key = (key, normalized_projection, limit, offset, engine,
                          epoch)
            plan_attrs["engine"] = engine

            if use_cache:
                entry = self._result_cache.get(result_key)
                if entry is not None:
                    normalized_bindings, has_more, summary = entry
                    bindings = [
                        {reverse[variable]: value
                         for variable, value in binding.items()}
                        for binding in normalized_bindings]
                    stages["plan"] = time.perf_counter() - stamp
                    stages["execute"] = 0.0
                    elapsed = time.monotonic() - started
                    # Cache hits do not run an executor, so they do not
                    # count toward the per-engine execution counters.
                    self._record(elapsed)
                    result = QueryResult(
                        variables=projection, bindings=bindings, cached=True,
                        elapsed_seconds=elapsed, limit=limit, offset=offset,
                        has_more=has_more, statistics=dict(summary),
                        stages=stages)
                    self._observe(query_profile, profile, result, query_text,
                                  None, operator_kind, plan_attrs)
                    return result

            statistics = ExecutionStatistics()
            # Fetch one solution past the page to learn whether more exist.
            fetch = None if limit is None else limit + 1
            if engine == "wcoj":
                # The variable elimination order is cached per normalized
                # BGP (stored under canonical variable names, translated to
                # this request's spelling) — the wcoj counterpart of the
                # nested path's template-order plan cache.
                plan_key = ("wcoj", key, self._plan_epoch)
                cached_order = self._plan_cache.get(plan_key)
                if cached_order is None:
                    order = plan_variable_order(query.bgp, self._planner)
                    self._plan_cache.put(
                        plan_key, tuple(mapping[v] for v in order))
                else:
                    order = tuple(reverse[v] for v in cached_order)
                stages["plan"] = time.perf_counter() - stamp
                if query_profile is not None:
                    operator_kind = "var"
                    estimates = variable_estimates(query.bgp, self._planner)
                    counters = [OperatorCounters(v, estimates.get(v))
                                for v in order]
                    plan_attrs["order"] = list(order)
                stamp = time.perf_counter()
                bindings = list(stream_bgp_wcoj(
                    index, query, planner=self._planner,
                    limit=fetch, offset=offset, timeout=timeout,
                    statistics=statistics, variable_order=order,
                    profile=counters))
                stages["execute"] = time.perf_counter() - stamp
            else:
                order, cartesian_joins = self._plan_for(
                    query, (key, self._plan_epoch))
                statistics.cartesian_joins = cartesian_joins
                plan_templates = [query.bgp.templates[i] for i in order]
                stages["plan"] = time.perf_counter() - stamp
                if query_profile is not None:
                    labels = [" ".join(str(term) for term in template.terms())
                              for template in plan_templates]
                    counters = [
                        OperatorCounters(
                            label,
                            self._planner.selectivity_key(template)[1])
                        for label, template in zip(labels, plan_templates)]
                    plan_attrs["order"] = labels
                stamp = time.perf_counter()
                bindings = list(stream_bgp(
                    index, query, planner=self._planner,
                    plan=plan_templates,
                    limit=fetch, offset=offset, timeout=timeout,
                    statistics=statistics, profile=counters))
                stages["execute"] = time.perf_counter() - stamp
            has_more: Optional[bool] = None
            if limit is not None:
                has_more = len(bindings) > limit
                bindings = bindings[:limit]
            summary = {
                "patterns_executed": statistics.patterns_executed,
                "triples_matched": statistics.triples_matched,
                "cartesian_joins": statistics.cartesian_joins,
                "seeks": statistics.seeks,
                "blocks_decoded": statistics.blocks_decoded,
                "engine": statistics.engine,
            }
            if use_cache:
                normalized_bindings = [
                    {mapping.get(variable, "?_" + variable): value
                     for variable, value in binding.items()}
                    for binding in bindings]
                self._result_cache.put(
                    result_key, (normalized_bindings, has_more, dict(summary)))
            elapsed = time.monotonic() - started
            self._record(elapsed, engine=statistics.engine)
            result = QueryResult(
                variables=projection, bindings=bindings, cached=False,
                elapsed_seconds=elapsed, limit=limit, offset=offset,
                has_more=has_more, statistics=summary, stages=stages)
            self._observe(query_profile, profile, result, query_text,
                          counters, operator_kind, plan_attrs)
            return result
        except Exception as error:
            from repro.errors import QueryTimeoutError
            elapsed = time.monotonic() - started
            timed_out = isinstance(error, QueryTimeoutError)
            self._record(elapsed, timed_out=timed_out, failed=not timed_out)
            if (query_profile is not None and self._slow_log is not None
                    and self._slow_log.should_log(elapsed)):
                # A timed-out (or failed) slow query is the one you most
                # want in the log — record it with whatever the engines
                # tallied before the abort.
                summary = {} if statistics is None else {
                    "patterns_executed": statistics.patterns_executed,
                    "triples_matched": statistics.triples_matched,
                    "seeks": statistics.seeks,
                    "blocks_decoded": statistics.blocks_decoded,
                    "engine": statistics.engine,
                }
                _build_spans(query_profile, stages, counters, operator_kind,
                             plan_attrs, summary, cached=False)
                query_profile.finish()
                with self._lock:
                    self._slow_queries += 1
                self._bump_metric("slow_queries")
                entry = {
                    "trace_id": query_profile.trace_id,
                    "elapsed_ms": round(elapsed * 1e3, 3),
                    "slow_ms": self._slow_log.threshold_ms,
                    "error": type(error).__name__,
                    "timed_out": timed_out,
                    "statistics": summary,
                    "profile": query_profile.to_json(),
                }
                if query_text is not None:
                    entry["query"] = query_text
                self._slow_log.record(entry)
            raise

    def _bump_metric(self, field: str) -> None:
        slot = self.metrics_slot
        if slot is not None:
            try:
                slot.add(field)
            except Exception:  # pragma: no cover - metrics must not fail
                pass

    def _observe(self, query_profile: Optional[QueryProfile],
                 requested_profile: bool, result: QueryResult,
                 query_text: Optional[str],
                 counters: Optional[List[OperatorCounters]],
                 operator_kind: str, plan_attrs: Dict[str, Any]) -> None:
        """Finalise the span tree and feed the slow-query log."""
        if query_profile is None:
            return
        _build_spans(query_profile, result.stages, counters, operator_kind,
                     plan_attrs, result.statistics, cached=result.cached)
        self._finalize_profile(query_profile, requested_profile, result,
                               query_text)

    def _finalize_profile(self, query_profile: QueryProfile,
                          requested_profile: bool, result: QueryResult,
                          query_text: Optional[str]) -> None:
        """Close a fully-assembled span tree: attach it to the result when
        requested and emit the slow-query log line when the query was slow
        (shared with the coordinator, which builds its own stitched tree)."""
        query_profile.finish()
        document = query_profile.to_json()
        if requested_profile:
            result.profile = document
        slow_log = self._slow_log
        if slow_log is None or not slow_log.should_log(result.elapsed_seconds):
            return
        with self._lock:
            self._slow_queries += 1
        self._bump_metric("slow_queries")
        entry = {
            "trace_id": query_profile.trace_id,
            "elapsed_ms": round(result.elapsed_seconds * 1e3, 3),
            "slow_ms": slow_log.threshold_ms,
            "engine": result.statistics.get("engine"),
            "cached": result.cached,
            "limit": result.limit,
            "offset": result.offset,
            "results": result.count,
            "statistics": dict(result.statistics),
            "profile": document,
        }
        if query_text is not None:
            entry["query"] = query_text
        slow_log.record(entry)

    def execute_batch(self, queries: Iterable[QueryLike],
                      limit: Optional[int] = None, offset: int = 0,
                      timeout: Optional[float] = None,
                      use_cache: bool = True,
                      engine: Optional[str] = None) -> List[QueryResult]:
        """Answer several queries in one call (shared options apply to all).

        One call, one pass over the service: batching amortises the
        per-request overhead for clients that replay query logs or fan out
        template instantiations.
        """
        results = [self.execute(query, limit=limit, offset=offset,
                                timeout=timeout, use_cache=use_cache,
                                engine=engine)
                   for query in queries]
        with self._lock:
            self._batches_executed += 1
        return results

    def select(self, pattern: PatternLike, limit: Optional[int] = None,
               offset: int = 0, use_cache: bool = True) -> PatternResult:
        """Answer one triple selection pattern (``None`` terms = wildcards)."""
        if len(pattern) != 3:
            raise ServiceError(
                f"a selection pattern needs exactly 3 terms, got {len(pattern)}")
        if offset < 0:
            raise ServiceError(f"offset must be >= 0, got {offset}")
        started = time.monotonic()
        limit = self._effective_limit(limit)
        index = self._snapshot()
        key = ("pattern", tuple(pattern), limit, offset,
               getattr(index, "epoch", 0))
        if use_cache:
            entry = self._result_cache.get(key)
            if entry is not None:
                triples, has_more = entry
                elapsed = time.monotonic() - started
                self._record(elapsed, pattern=True)
                return PatternResult(triples=list(triples), cached=True,
                                     elapsed_seconds=elapsed, limit=limit,
                                     offset=offset, has_more=has_more)
        triples: List[Tuple[int, int, int]] = []
        has_more: Optional[bool] = None
        fetch = None if limit is None else offset + limit + 1
        for position, triple in enumerate(index.select(tuple(pattern))):
            if position < offset:
                continue
            triples.append(triple)
            if fetch is not None and position + 1 >= fetch:
                break
        if limit is not None:
            has_more = len(triples) > limit
            triples = triples[:limit]
        if use_cache:
            self._result_cache.put(key, (list(triples), has_more))
        elapsed = time.monotonic() - started
        self._record(elapsed, pattern=True)
        return PatternResult(triples=triples, cached=False,
                             elapsed_seconds=elapsed, limit=limit,
                             offset=offset, has_more=has_more)

    # ------------------------------------------------------------------ #
    # Updates (dynamic indexes only).
    # ------------------------------------------------------------------ #

    def update(self, inserts: Sequence[Tuple[int, int, int]] = (),
               deletes: Sequence[Tuple[int, int, int]] = ()):
        """Apply inserts and deletes as one atomic batch.

        Requires a writable (dynamic) index.  The whole request is
        validated before anything mutates (a malformed triple anywhere
        rejects it all), applied under one lock with one epoch bump, and
        made durable per the index's WAL configuration; cache invalidation
        is automatic through the epoch carried in every result-cache key.
        If the batch trips the compaction threshold, the returned result
        carries the compaction report.
        """
        result = self._dynamic_index().update(inserts=inserts,
                                              deletes=deletes)
        self._record_update(result)
        return result

    def insert(self, triples: Sequence[Tuple[int, int, int]]):
        """Insert a batch of ID triples; returns the applied counts."""
        return self.update(inserts=triples)

    def delete(self, triples: Sequence[Tuple[int, int, int]]):
        """Delete a batch of ID triples (tombstoning base triples)."""
        return self.update(deletes=triples)

    def compact(self):
        """Fold the delta into a freshly built index and swap it in.

        Queries keep streaming from the pre-compaction snapshot while the
        rebuild runs; afterwards the planner adopts the rebuilt index's
        cardinality histograms and cached plans are retired.  A service
        opened with :meth:`from_file` also persists the compacted container
        back to its source file — only then is the WAL truncated, so a
        crash at any point between leaves a replayable history.
        """
        result = self._dynamic_index().compact()
        if result.compacted:
            self._adopt_compaction(result)
        return result

    def _record_update(self, result) -> None:
        with self._lock:
            self._updates_applied += result.inserted + result.deleted
        if result.compaction is not None and result.compaction.compacted:
            self._adopt_compaction(result.compaction)

    def _adopt_compaction(self, compaction) -> None:
        if self._source_path is not None:
            # Durability hand-over: once the rebuilt index (with its empty
            # delta) is in the container, the logged history is redundant.
            # A failed persist must not fail the (already durable, already
            # visible) request that triggered it: the WAL still holds the
            # full history, so nothing is lost — record the error for
            # ``/stats`` and move on.
            try:
                self._index.save(self._source_path,
                                 dictionary=self._dictionary,
                                 planner_stats=compaction.cardinalities,
                                 reset_wal=True)
                self._persist_error = None
            except Exception as error:
                self._persist_error = f"{type(error).__name__}: {error}"
        if compaction.cardinalities is not None:
            self._planner = QueryPlanner(
                cardinalities=compaction.cardinalities)
        with self._lock:
            # Retire every cached plan: the old histograms are gone.
            self._plan_epoch += 1

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release held resources — the WAL handle of a writable index.

        The graceful-shutdown path (SIGTERM / pool drain) calls this after
        the HTTP server stops accepting, so the log's file descriptor is
        released cleanly; every acknowledged write was already fsync-ed at
        append time.  Idempotent, and a no-op for read-only services.
        """
        closer = getattr(self._index, "close", None)
        if closer is not None:
            closer()
        if self._slow_log is not None:
            self._slow_log.close()

    # ------------------------------------------------------------------ #
    # Statistics.
    # ------------------------------------------------------------------ #

    def statistics(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the service's behaviour so far."""
        with self._lock:
            latencies = sorted(self._latencies)
            queries = self._queries_executed
            patterns = self._patterns_executed
            batches = self._batches_executed
            timeouts = self._timeouts
            errors = self._errors
            engine_counts = dict(self._engine_counts)
            updates_applied = self._updates_applied
            profile_requests = self._profile_requests
            slow_queries = self._slow_queries
        index = self._index
        report = {
            "uptime_seconds": time.monotonic() - self._started,
            "index": {
                "layout": getattr(index, "name", type(index).__name__),
                "num_triples": int(index.num_triples),
                "size_in_bits": int(index.size_in_bits()),
                "bits_per_triple": index.bits_per_triple(),
                "has_dictionary": self._dictionary is not None,
                "has_planner_stats": self._planner.cardinalities is not None,
            },
            "requests": {
                "queries": queries,
                "patterns": patterns,
                "batches": batches,
                "timeouts": timeouts,
                "errors": errors,
                "engines": engine_counts,
                "profile_requests": profile_requests,
                "slow_queries": slow_queries,
            },
            "engine": self._default_engine,
            "result_cache": self._result_cache.snapshot(),
            "plan_cache": self._plan_cache.snapshot(),
            "latency_ms": latency_report(latencies),
        }
        report["index"]["epoch"] = int(getattr(index, "epoch", 0))
        delta_statistics = getattr(index, "delta_statistics", None)
        report["index"]["writable"] = (self._writable
                                       and delta_statistics is not None)
        # ``compactions`` comes from the index (the single source of truth:
        # it also counts compactions applied outside this service).
        report["updates"] = {"applied": updates_applied, "compactions": 0}
        if delta_statistics is not None:
            report["updates"].update(delta_statistics())
            report["updates"]["persist_error"] = self._persist_error
        return report
