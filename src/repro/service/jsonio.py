"""One JSON serialisation path shared by the HTTP endpoints and the CLI.

``repro query --json``, ``repro info --json``, ``POST /query`` and
``GET /stats`` all produce their payloads through the helpers here, so
scripts that consume one consume them all.  The value-level codec
(variables, binding rows, triples, statistics, errors) lives in the
transport-agnostic :mod:`repro.wire` module — the same functions encode
the cluster shard RPC, so the coordinator decodes shard replies with the
exact inverses of what this module emits.  Conventions:

* variables lose their ``?`` sigil (``?person`` → ``"person"``), matching
  the spirit of the SPARQL JSON results format;
* bindings are flat objects mapping variable name to integer component ID
  (the native currency of the indexes — the string dictionary is an
  orthogonal, optional layer);
* elapsed times are reported in milliseconds as ``elapsed_ms``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import wire
from repro.queries.planner import ExecutionStatistics
from repro.wire import variable_name

__all__ = [
    "variable_name", "bindings_to_json", "execution_statistics_to_json",
    "sparql_results_to_json", "query_result_to_json", "triples_to_json",
    "pattern_results_to_json", "pattern_result_to_json", "info_to_json",
    "dumps",
]


def bindings_to_json(variables: Sequence[str],
                     bindings: Sequence[Dict[str, int]]
                     ) -> Tuple[List[str], List[Dict[str, int]]]:
    """Bare-name variable list + binding rows, ready for ``json.dumps``."""
    payload = wire.encode_bindings(variables, bindings)
    return payload["variables"], payload["bindings"]


def execution_statistics_to_json(statistics: ExecutionStatistics) -> Dict[str, Any]:
    return wire.encode_statistics(statistics)


def sparql_results_to_json(variables: Sequence[str],
                           bindings: Sequence[Dict[str, int]],
                           statistics: Optional[ExecutionStatistics] = None
                           ) -> Dict[str, Any]:
    """The CLI's ``repro query --sparql --json`` payload."""
    names, rows = bindings_to_json(variables, bindings)
    payload: Dict[str, Any] = {
        "variables": names,
        "bindings": rows,
        "count": len(rows),
    }
    if statistics is not None:
        payload["statistics"] = execution_statistics_to_json(statistics)
    return payload


def query_result_to_json(result) -> Dict[str, Any]:
    """Serialise a :class:`repro.service.engine.QueryResult`."""
    payload = sparql_results_to_json(result.variables, result.bindings)
    payload["statistics"] = dict(result.statistics)
    payload.update({
        "cached": result.cached,
        "elapsed_ms": result.elapsed_seconds * 1e3,
        "limit": result.limit,
        "offset": result.offset,
        "has_more": result.has_more,
    })
    profile = getattr(result, "profile", None)
    if profile is not None:
        payload["profile"] = profile
    return payload


def triples_to_json(triples: Sequence[Tuple[int, int, int]],
                    dictionary=None) -> List[List[Any]]:
    """Triple rows; with a dictionary, IDs are decoded back to RDF terms.

    Decoding is lenient: an ID inserted dynamically (no dictionary term)
    renders as ``<id:N>`` instead of failing the whole response.
    """
    if dictionary is None:
        return [list(triple) for triple in triples]
    return [list(dictionary.decode_lenient(triple)) for triple in triples]


def pattern_results_to_json(triples: Sequence[Tuple[int, int, int]],
                            dictionary=None) -> Dict[str, Any]:
    """The CLI's ``repro query --pattern --json`` payload."""
    return {
        "triples": triples_to_json(triples, dictionary=dictionary),
        "count": len(triples),
    }


def pattern_result_to_json(result, dictionary=None) -> Dict[str, Any]:
    """Serialise a :class:`repro.service.engine.PatternResult`."""
    payload = pattern_results_to_json(result.triples, dictionary=dictionary)
    payload.update({
        "cached": result.cached,
        "elapsed_ms": result.elapsed_seconds * 1e3,
        "limit": result.limit,
        "offset": result.offset,
        "has_more": result.has_more,
    })
    return payload


def info_to_json(info: Dict[str, Any]) -> Dict[str, Any]:
    """The ``repro info --json`` payload (``file_info`` is already plain)."""
    payload = {
        "path": info["path"],
        "format_version": info["format_version"],
        "meta": dict(info["meta"]),
        "section_bytes": dict(info["section_bytes"]),
        "total_bytes": info["total_bytes"],
    }
    if "space_breakdown" in info:
        payload["space_breakdown"] = {name: int(bits) for name, bits
                                      in info["space_breakdown"].items()}
    num_triples = payload["meta"].get("num_triples") or 0
    if num_triples:
        payload["on_disk_bits_per_triple"] = payload["total_bytes"] * 8 / num_triples
    return payload


def dumps(payload: Dict[str, Any]) -> str:
    """The one ``json.dumps`` configuration every producer shares."""
    return json.dumps(payload, indent=2, sort_keys=False)
